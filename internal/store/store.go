// Package store implements the authentication server's database of §V:
// records (ID, pk, P) keyed both by identity (verification mode) and by
// sketch similarity (identification mode).
//
// Identification lookup realises the paper's conditions (1)-(4), which
// reduce to a per-coordinate circular-distance test modulo the interval
// span ka (Theorem 2; see internal/sketch). Three strategies are provided:
//
//   - Scan: an early-exit linear scan over pre-computed residues. Each
//     non-matching record is rejected after a geometric number of integer
//     comparisons (expected < 1/(1-q) with q = (2t+1)/ka), so the cost per
//     enrolled user is a few nanoseconds — negligible next to one signature.
//   - Bucket: an inverted index over the residue buckets of the first
//     IndexDims coordinates. A query probes the 3^IndexDims circularly
//     adjacent buckets and early-exit-verifies only the candidate lists,
//     cutting the scanned fraction to ~(3/B)^IndexDims of the database.
//   - Sorted: a range index over the first residue coordinate (sorted.go).
//
// Either way, the *cryptographic* cost of identification is one Rep and one
// signature regardless of the database size — the paper's constant-cost
// claim — while the normal approach of Fig. 2 pays one Rep per enrolled
// user. The experiment harness measures both.
//
// Concurrency and layout. Scan and Bucket partition their records into P
// independent shards (see table.go): readers of different shards never share
// a lock cache line, and an insert or delete contends with one shard only.
// Residues live in a flat row-major matrix per shard, packed to the
// narrowest integer width that holds the interval span ka (see packed.go),
// so the early-exit scan streams a quarter of the bytes the naive int64
// layout would; a per-row coarse summary of the bucketed leading residues is
// checked before each row so an open-set (no-match) probe rejects almost
// every row after reading 8 bytes. Probe residue buffers are pooled — a
// steady-state Identify performs zero heap allocations. Large scans fan out
// across the shards with first-match cancellation (IdentifyCtx), and
// IdentifyBatch amortises residue computation and lock acquisition across a
// whole batch of probes.
//
// Durability. Mutations are expressed as Mutation values behind the
// journal seam of journal.go: the Journaled wrapper funnels every
// Insert/Delete through one interception point into a Journal backend
// (internal/persist), and Open/Replay rebuild any strategy from a recovered
// mutation stream through the same path.
package store

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"fuzzyid/internal/core"
	"fuzzyid/internal/numberline"
	"fuzzyid/internal/sketch"
)

// Errors returned by stores.
var (
	ErrDuplicateID  = errors.New("store: duplicate user ID")
	ErrUnknownID    = errors.New("store: unknown user ID")
	ErrNotFound     = errors.New("store: no record matches")
	ErrNilRecord    = errors.New("store: nil record or helper data")
	ErrBadDimension = errors.New("store: record dimension differs from store dimension")
	ErrBadProbe     = errors.New("store: malformed probe sketch")
)

// Record is one enrolled user: the tuple (ID, pk, P) the server keeps.
type Record struct {
	// ID is the user identity.
	ID string
	// PublicKey is the serialized signature-verification key pk.
	PublicKey []byte
	// Helper is the public helper data P = (s, r).
	Helper *core.HelperData
}

// Store is the server database interface shared by all lookup strategies.
type Store interface {
	// Insert adds a record; the ID must be unused.
	Insert(*Record) error
	// Get returns the record for a claimed identity (verification mode).
	Get(id string) (*Record, bool)
	// Delete removes an enrolled record (revocation / re-enrollment).
	Delete(id string) error
	// Replace atomically swaps the enrolled record for rec.ID with rec
	// (online re-enrollment with fresh helper data). The ID must already be
	// enrolled. Concurrent readers observe either the old template or the
	// new one in full — never a mix of the two.
	Replace(*Record) error
	// Identify returns a record whose enrolled sketch matches the probe
	// under conditions (1)-(4), or ErrNotFound. When several records match
	// (a false-close collision, bounded by the paper's FAR analysis), any
	// of them may be returned; which one is strategy- and
	// scheduling-dependent.
	Identify(probe *sketch.Sketch) (*Record, error)
	// IdentifyCtx is Identify with cancellation: the lookup aborts with
	// ctx.Err() once ctx is done.
	IdentifyCtx(ctx context.Context, probe *sketch.Sketch) (*Record, error)
	// IdentifyBatch resolves many probes in one call, amortising probe
	// validation and residue computation — and, where the strategy allows
	// (Scan), lock acquisition — across the batch. The result is aligned
	// with probes; a nil element means no record matched that probe. An
	// error is returned only for malformed probes.
	IdentifyBatch(probes []*sketch.Sketch) ([]*Record, error)
	// All returns a snapshot of every enrolled record in insertion-stable
	// order. The normal-approach protocol of Fig. 2 iterates it.
	All() []*Record
	// Len returns the number of enrolled records.
	Len() int
	// Dimension returns the record dimension the store adopted at first
	// insert, or 0 while it is empty.
	Dimension() int
	// Strategy names the lookup strategy ("scan", "bucket" or "sorted").
	Strategy() string
}

// residues precomputes the mod-ka residues of a sketch's movements, the
// quantity the match conditions compare.
func residues(line *numberline.Line, s *sketch.Sketch) []int64 {
	return residuesInto(make([]int64, 0, len(s.Movements)), line, s)
}

// residueClose reports whether two residues are within t on the circle of
// circumference span.
func residueClose(a, b, span, t int64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d > span-d {
		d = span - d
	}
	return d <= t
}

// entry is a stored record with its precomputed residues (used by the Sorted
// strategy, which keeps per-entry slices to preserve its range ordering).
type entry struct {
	rec *Record
	res []int64
}

// matchEntry runs the full early-exit condition check of the probe residues
// against a stored entry.
func matchEntry(e *entry, probeRes []int64, span, t int64) bool {
	return matchRow(e.res, probeRes, span, t)
}

// validateProbe rejects nil, empty and wrong-dimension probes. dim is the
// store's adopted dimension (0 while the store is empty).
func validateProbe(probe *sketch.Sketch, dim int) error {
	if probe == nil || len(probe.Movements) == 0 {
		return ErrBadProbe
	}
	if dim != 0 && len(probe.Movements) != dim {
		return fmt.Errorf("%w: probe dimension %d, store %d", ErrBadProbe, len(probe.Movements), dim)
	}
	return nil
}

// scanBlock is the number of rows scanned between cancellation checks.
const scanBlock = 256

// scanParallelRows is the table size from which a single Identify fans out
// across the shards instead of walking them sequentially; below it the
// goroutine handoff costs more than the scan.
const scanParallelRows = 1 << 14

// Scan is the early-exit linear-scan store, sharded for concurrent use.
type Scan struct {
	line *numberline.Line
	tab  *resTable
}

var _ Store = (*Scan)(nil)

// NewScan constructs a scan store over the given line with the default
// shard count (the scheduler's parallelism).
func NewScan(line *numberline.Line) *Scan { return NewScanShards(line, 0) }

// NewScanShards constructs a scan store with an explicit shard count;
// shards < 1 selects the default.
func NewScanShards(line *numberline.Line, shards int) *Scan {
	s, err := NewScanTuned(line, shards, Tuning{})
	if err != nil {
		// Unreachable: the zero Tuning always resolves.
		panic(err)
	}
	return s
}

// NewScanTuned constructs a scan store with explicit scan-path tuning; see
// Tuning. It fails only on an invalid or too-narrow ResidueWidth.
func NewScanTuned(line *numberline.Line, shards int, tun Tuning) (*Scan, error) {
	tab, err := newResTableTuned(line, shards, tun)
	if err != nil {
		return nil, err
	}
	return &Scan{line: line, tab: tab}, nil
}

// Strategy implements Store.
func (s *Scan) Strategy() string { return "scan" }

// Shards returns the number of shards the store was built with.
func (s *Scan) Shards() int { return s.tab.numShards() }

// ResidueWidth returns the packed residue storage width in bits.
func (s *Scan) ResidueWidth() int { return s.tab.residueWidth() }

// CoarseFilter reports whether scans consult the coarse pre-filter. It is
// false until the first insert sizes the filter, and stays false when the
// line's parameters make it vacuous or tuning disabled it.
func (s *Scan) CoarseFilter() bool { return s.tab.coarseEnabled() }

// Len implements Store.
func (s *Scan) Len() int { return s.tab.size() }

// Dimension implements Store.
func (s *Scan) Dimension() int { return s.tab.dimension() }

// Insert implements Store.
func (s *Scan) Insert(rec *Record) error {
	if err := validateRecord(rec); err != nil {
		return err
	}
	bufp := getResBuf()
	res := residuesInto(*bufp, s.line, rec.Helper.Sketch.Sketch)
	*bufp = res
	_, err := s.tab.insert(rec, res)
	putResBuf(bufp)
	return err
}

// Get implements Store.
func (s *Scan) Get(id string) (*Record, bool) { return s.tab.get(id) }

// Delete implements Store.
func (s *Scan) Delete(id string) error {
	_, _, err := s.tab.delete(id)
	return err
}

// Replace implements Store. The row is overwritten in place under its
// shard's write lock, so a concurrent Identify or Get sees the old template
// or the new one, never a mix.
func (s *Scan) Replace(rec *Record) error {
	if err := validateRecord(rec); err != nil {
		return err
	}
	bufp := getResBuf()
	res := residuesInto(*bufp, s.line, rec.Helper.Sketch.Sketch)
	*bufp = res
	_, _, err := s.tab.replace(rec, res)
	putResBuf(bufp)
	return err
}

// All implements Store.
func (s *Scan) All() []*Record { return s.tab.all() }

// Identify implements Store.
func (s *Scan) Identify(probe *sketch.Sketch) (*Record, error) {
	return s.IdentifyCtx(context.Background(), probe)
}

// IdentifyCtx implements Store.
func (s *Scan) IdentifyCtx(ctx context.Context, probe *sketch.Sketch) (*Record, error) {
	if err := validateProbe(probe, s.tab.dimension()); err != nil {
		return nil, err
	}
	bufp := getResBuf()
	defer putResBuf(bufp)
	res := residuesInto(*bufp, s.line, probe)
	*bufp = res
	span, t := s.line.IntervalSpan(), s.line.Threshold()
	cp := s.tab.probeFilter(res)
	if s.tab.size() >= scanParallelRows && s.tab.numShards() > 1 && runtime.GOMAXPROCS(0) > 1 {
		return s.identifyParallel(ctx, res, span, t, cp)
	}
	for si := range s.tab.shards {
		sh := &s.tab.shards[si]
		sh.mu.RLock()
		rec, err := scanShardSeq(ctx, sh, res, span, t, cp)
		sh.mu.RUnlock()
		if rec != nil || err != nil {
			return rec, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, ErrNotFound
}

// probeFilter builds the coarse admission masks for one probe. The filter
// parameters are published by the dim store in adoptDimension, so they may
// be read only after observing a non-zero dimension (the atomic load pairs
// with that release store); while the table is empty the zero (disabled)
// probe is returned, which admits every row.
func (t *resTable) probeFilter(res []int64) coarseProbe {
	if t.dim.Load() == 0 {
		return coarseProbe{}
	}
	return t.coarse.probe(res)
}

// scanShardSeq walks one shard's packed matrix with per-block early exit,
// checking for cancellation between blocks. The caller holds the shard read
// lock.
func scanShardSeq(ctx context.Context, sh *tableShard, probe []int64, span, t int64, cp coarseProbe) (*Record, error) {
	dim := len(probe)
	n := len(sh.recs)
	for base := 0; base < n; base += scanBlock {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := base + scanBlock
		if end > n {
			end = n
		}
		if i := sh.mat.scanRange(base, end, dim, probe, span, t, sh.coarse, cp); i >= 0 {
			return sh.recs[i], nil
		}
	}
	return nil, nil
}

// scanJob carries one fanned-out Identify across the shard workers. Jobs are
// pooled so the parallel path stays allocation-free in steady state.
type scanJob struct {
	tab     *resTable
	probe   []int64
	span, t int64
	cp      coarseProbe
	ctx     context.Context
	stop    atomic.Bool
	found   atomic.Pointer[Record]
	wg      sync.WaitGroup
}

var scanJobPool = sync.Pool{New: func() any { return new(scanJob) }}

// identifyParallel fans the scan out with one worker per shard — a pool
// bounded by the shard count — and cancels the stragglers on first match.
func (s *Scan) identifyParallel(ctx context.Context, probe []int64, span, t int64, cp coarseProbe) (*Record, error) {
	job := scanJobPool.Get().(*scanJob)
	job.tab, job.probe, job.span, job.t, job.ctx = s.tab, probe, span, t, ctx
	job.cp = cp
	job.stop.Store(false)
	job.found.Store(nil)
	for si := range s.tab.shards {
		job.wg.Add(1)
		go job.scanShard(si)
	}
	job.wg.Wait()
	rec := job.found.Load()
	job.tab, job.probe, job.ctx = nil, nil, nil
	scanJobPool.Put(job)
	if rec != nil {
		return rec, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, ErrNotFound
}

func (j *scanJob) scanShard(si int) {
	defer j.wg.Done()
	sh := &j.tab.shards[si]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	dim := len(j.probe)
	n := len(sh.recs)
	for base := 0; base < n; base += scanBlock {
		if j.stop.Load() || j.ctx.Err() != nil {
			return
		}
		end := base + scanBlock
		if end > n {
			end = n
		}
		if i := sh.mat.scanRange(base, end, dim, j.probe, j.span, j.t, sh.coarse, j.cp); i >= 0 {
			j.found.CompareAndSwap(nil, sh.recs[i])
			j.stop.Store(true)
			return
		}
	}
}

// IdentifyBatch implements Store. Residues are computed once per probe and
// every shard lock is taken once for the whole batch.
func (s *Scan) IdentifyBatch(probes []*sketch.Sketch) ([]*Record, error) {
	dim := s.tab.dimension()
	for i, p := range probes {
		if err := validateProbe(p, dim); err != nil {
			return nil, fmt.Errorf("probe %d: %w", i, err)
		}
	}
	out := make([]*Record, len(probes))
	if len(probes) == 0 || s.tab.size() == 0 {
		return out, nil
	}
	span, t := s.line.IntervalSpan(), s.line.Threshold()
	pdim := len(probes[0].Movements)
	resAll := make([]int64, len(probes)*pdim)
	cps := make([]coarseProbe, len(probes))
	for i, p := range probes {
		residuesInto(resAll[i*pdim:i*pdim:(i+1)*pdim], s.line, p)
		cps[i] = s.tab.probeFilter(resAll[i*pdim : (i+1)*pdim])
	}
	remaining := len(probes)
	for si := range s.tab.shards {
		sh := &s.tab.shards[si]
		sh.mu.RLock()
		for pi := range probes {
			if out[pi] != nil {
				continue
			}
			probeRes := resAll[pi*pdim : (pi+1)*pdim]
			rec, _ := scanShardSeq(context.Background(), sh, probeRes, span, t, cps[pi])
			if rec != nil {
				out[pi] = rec
				remaining--
			}
		}
		sh.mu.RUnlock()
		if remaining == 0 {
			break
		}
	}
	return out, nil
}

// Bucket is the inverted-index store: residues of the first IndexDims
// coordinates are quantised into circular buckets of width >= t; the packed
// composite bucket key maps to the list of rows in that cell. Lookup probes
// the 3^IndexDims circularly adjacent cells (a matching record's key can
// differ by at most one bucket per coordinate) and verifies candidates with
// the early-exit condition check against the sharded flat residue table.
// The cell index itself is sharded by key hash, so concurrent lookups and
// inserts spread across independent locks.
type Bucket struct {
	line    *numberline.Line
	reqDims int   // requested index depth, before clamping
	buckets int64 // buckets per coordinate
	bits    uint  // bits per coordinate in the packed cell key
	effDims atomic.Int32

	tab   *resTable
	cells []cellShard
}

// cellShard is one shard of the inverted index, keyed by packed bucket key.
type cellShard struct {
	mu    sync.RWMutex
	cells map[uint64][]*rowRef
}

var _ Store = (*Bucket)(nil)

// DefaultIndexDims is the default number of indexed coordinates.
const DefaultIndexDims = 4

// maxIndexDims bounds the index depth so cell keys pack into 64 bits and
// probe state fits on the stack.
const maxIndexDims = 16

// NewBucket constructs a bucket-index store with the default shard count.
// indexDims <= 0 selects DefaultIndexDims; it is clamped to the record
// dimension at first insert.
func NewBucket(line *numberline.Line, indexDims int) *Bucket {
	return NewBucketShards(line, indexDims, 0)
}

// NewBucketShards constructs a bucket-index store with an explicit shard
// count; shards < 1 selects the default.
func NewBucketShards(line *numberline.Line, indexDims, shards int) *Bucket {
	b, err := NewBucketTuned(line, indexDims, shards, Tuning{})
	if err != nil {
		// Unreachable: the zero Tuning always resolves.
		panic(err)
	}
	return b
}

// NewBucketTuned constructs a bucket-index store with explicit scan-path
// tuning; see Tuning. It fails only on an invalid or too-narrow
// ResidueWidth.
func NewBucketTuned(line *numberline.Line, indexDims, shards int, tun Tuning) (*Bucket, error) {
	if indexDims <= 0 {
		indexDims = DefaultIndexDims
	}
	span := line.IntervalSpan()
	t := line.Threshold()
	var nbuckets int64 = 1
	if t > 0 {
		nbuckets = span / t // bucket width span/buckets >= t
	} else {
		nbuckets = span
	}
	if nbuckets < 1 {
		nbuckets = 1
	}
	kb := uint(bits.Len64(uint64(nbuckets - 1)))
	if nbuckets == 1 {
		// Every record lands in the single cell; one indexed coordinate
		// keeps the neighbour enumeration from revisiting it 3^d times.
		indexDims = 1
	}
	for indexDims > maxIndexDims || (kb > 0 && uint(indexDims)*kb > 64) {
		indexDims--
	}
	tab, err := newResTableTuned(line, shards, tun)
	if err != nil {
		return nil, err
	}
	b := &Bucket{
		line:    line,
		reqDims: indexDims,
		buckets: nbuckets,
		bits:    kb,
		tab:     tab,
		cells:   make([]cellShard, tab.numShards()),
	}
	for i := range b.cells {
		b.cells[i].cells = make(map[uint64][]*rowRef)
	}
	return b, nil
}

// Strategy implements Store.
func (b *Bucket) Strategy() string { return "bucket" }

// Shards returns the number of shards the store was built with.
func (b *Bucket) Shards() int { return b.tab.numShards() }

// ResidueWidth returns the packed residue storage width in bits.
func (b *Bucket) ResidueWidth() int { return b.tab.residueWidth() }

// Buckets returns the number of buckets per indexed coordinate.
func (b *Bucket) Buckets() int64 { return b.buckets }

// IndexDims returns the number of indexed coordinates (after clamping).
func (b *Bucket) IndexDims() int {
	if d := b.effDims.Load(); d != 0 {
		return int(d)
	}
	return b.reqDims
}

// clampDims fixes the effective index depth once the record dimension is
// known.
func (b *Bucket) clampDims(dim int) {
	if b.effDims.Load() != 0 {
		return
	}
	d := b.reqDims
	if d > dim {
		d = dim
	}
	b.effDims.CompareAndSwap(0, int32(d))
}

// Len implements Store.
func (b *Bucket) Len() int { return b.tab.size() }

// Dimension implements Store.
func (b *Bucket) Dimension() int { return b.tab.dimension() }

// Insert implements Store.
func (b *Bucket) Insert(rec *Record) error {
	if err := validateRecord(rec); err != nil {
		return err
	}
	bufp := getResBuf()
	defer putResBuf(bufp)
	res := residuesInto(*bufp, b.line, rec.Helper.Sketch.Sketch)
	*bufp = res
	ref, err := b.tab.insert(rec, res)
	if err != nil {
		return err
	}
	b.clampDims(len(res))
	b.addCellRef(b.cellKey(res, int(b.effDims.Load())), ref)
	return nil
}

// Delete implements Store.
func (b *Bucket) Delete(id string) error {
	ref, res, err := b.tab.delete(id)
	if err != nil {
		return err
	}
	b.removeCellRef(b.cellKey(res, int(b.effDims.Load())), ref)
	return nil
}

// Replace implements Store. Ordering matters for lock safety and lookup
// visibility: the row handle is published to the new template's cell first,
// then the row is swapped in place under its table-shard write lock, and
// only then is the handle removed from the old cell. probeCell acquires the
// cell-shard lock before the table-shard lock, so Replace never holds a
// table-shard lock while touching a cell; and because the handle is in both
// cells across the swap, a concurrent Identify always finds whichever
// template is live (a stale or duplicate cell entry is harmless — every
// candidate is fully verified against the live residues under the
// table-shard lock).
func (b *Bucket) Replace(rec *Record) error {
	if err := validateRecord(rec); err != nil {
		return err
	}
	bufp := getResBuf()
	defer putResBuf(bufp)
	res := residuesInto(*bufp, b.line, rec.Helper.Sketch.Sketch)
	*bufp = res
	ref, ok := b.tab.refOf(rec.ID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownID, rec.ID)
	}
	b.clampDims(len(res))
	newKey := b.cellKey(res, int(b.effDims.Load()))
	b.addCellRef(newKey, ref)
	newRef, oldRes, err := b.tab.replace(rec, res)
	if err != nil {
		b.removeCellRef(newKey, ref)
		return err
	}
	if newRef != ref {
		// The row was deleted and re-inserted between refOf and replace
		// (impossible under the journal seam, which serialises mutations,
		// but raw stores make no such promise): drop the stale handle and
		// index the live one.
		b.removeCellRef(newKey, ref)
		b.addCellRef(newKey, newRef)
	}
	oldKey := b.cellKey(oldRes, int(b.effDims.Load()))
	// Remove exactly one occurrence of the handle from the old cell: the one
	// the original insert (or a prior replace) published. When the key is
	// unchanged this removes the duplicate just added, leaving one entry.
	b.removeCellRef(oldKey, newRef)
	return nil
}

// addCellRef publishes a row handle under the given cell key.
func (b *Bucket) addCellRef(key uint64, ref *rowRef) {
	cs := b.cellShardFor(key)
	cs.mu.Lock()
	cs.cells[key] = append(cs.cells[key], ref)
	cs.mu.Unlock()
}

// removeCellRef removes one occurrence of ref from the given cell (no-op
// when absent).
func (b *Bucket) removeCellRef(key uint64, ref *rowRef) {
	cs := b.cellShardFor(key)
	cs.mu.Lock()
	cell := cs.cells[key]
	for i, cand := range cell {
		if cand == ref {
			cell[i] = cell[len(cell)-1]
			cell[len(cell)-1] = nil
			cs.cells[key] = cell[:len(cell)-1]
			break
		}
	}
	if len(cs.cells[key]) == 0 {
		delete(cs.cells, key)
	}
	cs.mu.Unlock()
}

// All implements Store.
func (b *Bucket) All() []*Record { return b.tab.all() }

// Get implements Store.
func (b *Bucket) Get(id string) (*Record, bool) { return b.tab.get(id) }

// Identify implements Store.
func (b *Bucket) Identify(probe *sketch.Sketch) (*Record, error) {
	return b.IdentifyCtx(context.Background(), probe)
}

// IdentifyCtx implements Store.
func (b *Bucket) IdentifyCtx(ctx context.Context, probe *sketch.Sketch) (*Record, error) {
	if err := validateProbe(probe, b.tab.dimension()); err != nil {
		return nil, err
	}
	bufp := getResBuf()
	defer putResBuf(bufp)
	res := residuesInto(*bufp, b.line, probe)
	*bufp = res
	return b.identifyRes(ctx, res)
}

// identifyRes runs the neighbour-cell walk for one probe's residues. It
// probes the probe's own cell before the neighbours, since a genuine
// probe's record lands there except when boundary coordinates shifted
// bucket.
func (b *Bucket) identifyRes(ctx context.Context, res []int64) (*Record, error) {
	d := int(b.effDims.Load())
	if d == 0 {
		return nil, ErrNotFound // empty store
	}
	span, t := b.line.IntervalSpan(), b.line.Threshold()
	var base, offs [maxIndexDims]int64
	var center uint64
	for i := 0; i < d; i++ {
		base[i] = b.bucketOf(res[i])
		offs[i] = -1
		center |= uint64(base[i]) << (uint(i) * b.bits)
	}
	if rec := b.probeCell(center, res, span, t); rec != nil {
		return rec, nil
	}
	for {
		var key uint64
		allZero := true
		for i := 0; i < d; i++ {
			if offs[i] != 0 {
				allZero = false
			}
			bk := (base[i] + offs[i] + b.buckets) % b.buckets
			key |= uint64(bk) << (uint(i) * b.bits)
		}
		if !allZero { // the centre cell was probed first
			if rec := b.probeCell(key, res, span, t); rec != nil {
				return rec, nil
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Advance the offset vector through {-1, 0, 1}^d.
		i := 0
		for ; i < d; i++ {
			offs[i]++
			if offs[i] <= 1 {
				break
			}
			offs[i] = -1
		}
		if i == d {
			break
		}
	}
	return nil, ErrNotFound
}

// probeCell early-exit-verifies every candidate row of one cell, taking the
// candidate's own table-shard read lock around each row check — lookups
// touch only the shards their candidates live in, so concurrent readers of
// different shards never share a lock cache line. A handle that went stale
// between cell read and row lock (swap-delete) is kept harmless by the
// bounds check plus the full residue comparison: a relocated row either
// fails the match or names a record that genuinely matches.
func (b *Bucket) probeCell(key uint64, probe []int64, span, t int64) *Record {
	cs := b.cellShardFor(key)
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	dim := len(probe)
	cell := cs.cells[key]
	for i := 0; i < len(cell); {
		sh := &b.tab.shards[cell[i].shard]
		// One lock round trip covers the run of consecutive candidates
		// living in the same shard.
		sh.mu.RLock()
		for ; i < len(cell) && &b.tab.shards[cell[i].shard] == sh; i++ {
			row := int(cell[i].row.Load())
			if row >= 0 && row < len(sh.recs) {
				if sh.mat.matchOne(row, dim, probe, span, t) {
					rec := sh.recs[row]
					sh.mu.RUnlock()
					return rec
				}
			}
		}
		sh.mu.RUnlock()
	}
	return nil
}

// IdentifyBatch implements Store.
func (b *Bucket) IdentifyBatch(probes []*sketch.Sketch) ([]*Record, error) {
	dim := b.tab.dimension()
	for i, p := range probes {
		if err := validateProbe(p, dim); err != nil {
			return nil, fmt.Errorf("probe %d: %w", i, err)
		}
	}
	out := make([]*Record, len(probes))
	if len(probes) == 0 || b.tab.size() == 0 {
		return out, nil
	}
	bufp := getResBuf()
	defer putResBuf(bufp)
	for i, p := range probes {
		res := residuesInto(*bufp, b.line, p)
		*bufp = res
		rec, err := b.identifyRes(context.Background(), res)
		if err != nil && !errors.Is(err, ErrNotFound) {
			return nil, err
		}
		out[i] = rec
	}
	return out, nil
}

// bucketOf maps a residue in [0, span) to its bucket in [0, buckets).
func (b *Bucket) bucketOf(res int64) int64 {
	span := b.line.IntervalSpan()
	bk := res * b.buckets / span
	if bk >= b.buckets {
		bk = b.buckets - 1
	}
	return bk
}

// cellKey packs the bucket indices of the first dims coordinates into one
// uint64 — the map key of the inverted index.
func (b *Bucket) cellKey(res []int64, dims int) uint64 {
	var key uint64
	for i := 0; i < dims; i++ {
		key |= uint64(b.bucketOf(res[i])) << (uint(i) * b.bits)
	}
	return key
}

// cellShardFor spreads packed keys across the cell shards.
func (b *Bucket) cellShardFor(key uint64) *cellShard {
	h := (key + 1) * 0x9E3779B97F4A7C15 // Fibonacci hashing; +1 mixes key 0
	return &b.cells[(h>>33)%uint64(len(b.cells))]
}

func validateRecord(rec *Record) error {
	if rec == nil || rec.Helper == nil || rec.Helper.Sketch == nil || rec.Helper.Sketch.Sketch == nil {
		return ErrNilRecord
	}
	if rec.ID == "" {
		return fmt.Errorf("%w: empty ID", ErrNilRecord)
	}
	if len(rec.PublicKey) == 0 {
		return fmt.Errorf("%w: empty public key", ErrNilRecord)
	}
	if rec.Helper.Dimension() == 0 {
		return fmt.Errorf("%w: empty sketch", ErrNilRecord)
	}
	return nil
}

// ByStrategy constructs a store by name with the default shard count:
// "scan", "bucket" or "sorted".
func ByStrategy(name string, line *numberline.Line) (Store, error) {
	return ByStrategyShards(name, line, 0)
}

// ByStrategyShards constructs a store by name with an explicit shard count
// (shards < 1 selects the default; the sorted strategy is unsharded and
// ignores it).
func ByStrategyShards(name string, line *numberline.Line, shards int) (Store, error) {
	return ByStrategyTuned(name, line, shards, Tuning{})
}

// ByStrategyTuned constructs a store by name with explicit scan-path tuning
// (see Tuning). The sorted strategy keeps unpacked per-entry residues and
// ignores the tuning.
func ByStrategyTuned(name string, line *numberline.Line, shards int, tun Tuning) (Store, error) {
	switch name {
	case "scan":
		return NewScanTuned(line, shards, tun)
	case "bucket":
		return NewBucketTuned(line, 0, shards, tun)
	case "sorted":
		return NewSorted(line), nil
	default:
		return nil, fmt.Errorf("store: unknown strategy %q", name)
	}
}

// Strategies lists the available lookup strategies.
func Strategies() []string { return []string{"scan", "bucket", "sorted"} }
