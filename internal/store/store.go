// Package store implements the authentication server's database of §V:
// records (ID, pk, P) keyed both by identity (verification mode) and by
// sketch similarity (identification mode).
//
// Identification lookup realises the paper's conditions (1)-(4), which
// reduce to a per-coordinate circular-distance test modulo the interval
// span ka (Theorem 2; see internal/sketch). Two strategies are provided:
//
//   - Scan: an early-exit linear scan over pre-computed residues. Each
//     non-matching record is rejected after a geometric number of integer
//     comparisons (expected < 1/(1-q) with q = (2t+1)/ka), so the cost per
//     enrolled user is a few nanoseconds — negligible next to one signature.
//   - Bucket: an inverted index over the residue buckets of the first
//     IndexDims coordinates. A query probes the 3^IndexDims circularly
//     adjacent buckets and early-exit-verifies only the candidate lists,
//     cutting the scanned fraction to ~(3/B)^IndexDims of the database.
//
// Either way, the *cryptographic* cost of identification is one Rep and one
// signature regardless of the database size — the paper's constant-cost
// claim — while the normal approach of Fig. 2 pays one Rep per enrolled
// user. The experiment harness measures both.
package store

import (
	"errors"
	"fmt"
	"sync"

	"fuzzyid/internal/core"
	"fuzzyid/internal/numberline"
	"fuzzyid/internal/sketch"
)

// Errors returned by stores.
var (
	ErrDuplicateID  = errors.New("store: duplicate user ID")
	ErrUnknownID    = errors.New("store: unknown user ID")
	ErrNotFound     = errors.New("store: no record matches")
	ErrNilRecord    = errors.New("store: nil record or helper data")
	ErrBadDimension = errors.New("store: record dimension differs from store dimension")
	ErrBadProbe     = errors.New("store: malformed probe sketch")
)

// Record is one enrolled user: the tuple (ID, pk, P) the server keeps.
type Record struct {
	// ID is the user identity.
	ID string
	// PublicKey is the serialized signature-verification key pk.
	PublicKey []byte
	// Helper is the public helper data P = (s, r).
	Helper *core.HelperData
}

// Store is the server database interface shared by all lookup strategies.
type Store interface {
	// Insert adds a record; the ID must be unused.
	Insert(*Record) error
	// Get returns the record for a claimed identity (verification mode).
	Get(id string) (*Record, bool)
	// Delete removes an enrolled record (revocation / re-enrollment).
	Delete(id string) error
	// Identify returns the record whose enrolled sketch matches the probe
	// under conditions (1)-(4), or ErrNotFound.
	Identify(probe *sketch.Sketch) (*Record, error)
	// All returns a snapshot of every enrolled record in insertion-stable
	// order. The normal-approach protocol of Fig. 2 iterates it.
	All() []*Record
	// Len returns the number of enrolled records.
	Len() int
	// Strategy names the lookup strategy ("scan" or "bucket").
	Strategy() string
}

// residues precomputes the mod-ka residues of a sketch's movements, the
// quantity the match conditions compare.
func residues(line *numberline.Line, s *sketch.Sketch) []int64 {
	span := line.IntervalSpan()
	out := make([]int64, len(s.Movements))
	for i, m := range s.Movements {
		r := m % span
		if r < 0 {
			r += span
		}
		out[i] = r
	}
	return out
}

// residueClose reports whether two residues are within t on the circle of
// circumference span.
func residueClose(a, b, span, t int64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d > span-d {
		d = span - d
	}
	return d <= t
}

// entry is a stored record with its precomputed residues.
type entry struct {
	rec *Record
	res []int64
}

// matchEntry runs the full early-exit condition check of the probe residues
// against a stored entry.
func matchEntry(e *entry, probeRes []int64, span, t int64) bool {
	for i, r := range e.res {
		if !residueClose(r, probeRes[i], span, t) {
			return false
		}
	}
	return true
}

// Scan is the early-exit linear-scan store.
type Scan struct {
	line *numberline.Line

	mu      sync.RWMutex
	byID    map[string]*entry
	entries []*entry
	dim     int
}

var _ Store = (*Scan)(nil)

// NewScan constructs a scan store over the given line.
func NewScan(line *numberline.Line) *Scan {
	return &Scan{line: line, byID: make(map[string]*entry)}
}

// Strategy implements Store.
func (s *Scan) Strategy() string { return "scan" }

// Len implements Store.
func (s *Scan) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Insert implements Store.
func (s *Scan) Insert(rec *Record) error {
	if err := validateRecord(rec); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[rec.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateID, rec.ID)
	}
	if s.dim == 0 {
		s.dim = rec.Helper.Dimension()
	} else if rec.Helper.Dimension() != s.dim {
		return fmt.Errorf("%w: got %d, want %d", ErrBadDimension, rec.Helper.Dimension(), s.dim)
	}
	e := &entry{rec: rec, res: residues(s.line, rec.Helper.Sketch.Sketch)}
	s.byID[rec.ID] = e
	s.entries = append(s.entries, e)
	return nil
}

// Get implements Store.
func (s *Scan) Get(id string) (*Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return e.rec, true
}

// Delete implements Store.
func (s *Scan) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownID, id)
	}
	delete(s.byID, id)
	for i, cand := range s.entries {
		if cand == e {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			break
		}
	}
	return nil
}

// All implements Store.
func (s *Scan) All() []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Record, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.rec
	}
	return out
}

// Identify implements Store.
func (s *Scan) Identify(probe *sketch.Sketch) (*Record, error) {
	probeRes, err := s.probeResidues(probe)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	span, t := s.line.IntervalSpan(), s.line.Threshold()
	for _, e := range s.entries {
		if matchEntry(e, probeRes, span, t) {
			return e.rec, nil
		}
	}
	return nil, ErrNotFound
}

func (s *Scan) probeResidues(probe *sketch.Sketch) ([]int64, error) {
	if probe == nil || len(probe.Movements) == 0 {
		return nil, ErrBadProbe
	}
	s.mu.RLock()
	dim := s.dim
	s.mu.RUnlock()
	if dim != 0 && len(probe.Movements) != dim {
		return nil, fmt.Errorf("%w: probe dimension %d, store %d", ErrBadProbe, len(probe.Movements), dim)
	}
	return residues(s.line, probe), nil
}

// Bucket is the inverted-index store: residues of the first IndexDims
// coordinates are quantised into circular buckets of width >= t; the
// composite bucket key maps to the list of records in that cell. Lookup
// probes the 3^IndexDims adjacent cells (a matching record's key can differ
// by at most one bucket per coordinate) and verifies candidates with the
// early-exit condition check.
type Bucket struct {
	line      *numberline.Line
	indexDims int
	buckets   int64 // buckets per coordinate

	mu    sync.RWMutex
	byID  map[string]*entry
	cells map[string][]*entry
	order []*entry
	dim   int
	count int
}

var _ Store = (*Bucket)(nil)

// DefaultIndexDims is the default number of indexed coordinates.
const DefaultIndexDims = 4

// NewBucket constructs a bucket-index store. indexDims <= 0 selects
// DefaultIndexDims; it is clamped to the record dimension at first insert.
func NewBucket(line *numberline.Line, indexDims int) *Bucket {
	if indexDims <= 0 {
		indexDims = DefaultIndexDims
	}
	span := line.IntervalSpan()
	t := line.Threshold()
	var buckets int64 = 1
	if t > 0 {
		buckets = span / t // bucket width span/buckets >= t
	} else {
		buckets = span
	}
	if buckets < 1 {
		buckets = 1
	}
	return &Bucket{
		line:      line,
		indexDims: indexDims,
		buckets:   buckets,
		byID:      make(map[string]*entry),
		cells:     make(map[string][]*entry),
	}
}

// Strategy implements Store.
func (b *Bucket) Strategy() string { return "bucket" }

// Buckets returns the number of buckets per indexed coordinate.
func (b *Bucket) Buckets() int64 { return b.buckets }

// IndexDims returns the number of indexed coordinates (after clamping).
func (b *Bucket) IndexDims() int { return b.indexDims }

// Len implements Store.
func (b *Bucket) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.count
}

// Insert implements Store.
func (b *Bucket) Insert(rec *Record) error {
	if err := validateRecord(rec); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.byID[rec.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateID, rec.ID)
	}
	n := rec.Helper.Dimension()
	if b.dim == 0 {
		b.dim = n
		if b.indexDims > n {
			b.indexDims = n
		}
	} else if n != b.dim {
		return fmt.Errorf("%w: got %d, want %d", ErrBadDimension, n, b.dim)
	}
	e := &entry{rec: rec, res: residues(b.line, rec.Helper.Sketch.Sketch)}
	key := b.cellKey(e.res)
	b.byID[rec.ID] = e
	b.cells[key] = append(b.cells[key], e)
	b.order = append(b.order, e)
	b.count++
	return nil
}

// Delete implements Store.
func (b *Bucket) Delete(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.byID[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownID, id)
	}
	delete(b.byID, id)
	key := b.cellKey(e.res)
	cell := b.cells[key]
	for i, cand := range cell {
		if cand == e {
			b.cells[key] = append(cell[:i], cell[i+1:]...)
			break
		}
	}
	if len(b.cells[key]) == 0 {
		delete(b.cells, key)
	}
	for i, cand := range b.order {
		if cand == e {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	b.count--
	return nil
}

// All implements Store.
func (b *Bucket) All() []*Record {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]*Record, len(b.order))
	for i, e := range b.order {
		out[i] = e.rec
	}
	return out
}

// Get implements Store.
func (b *Bucket) Get(id string) (*Record, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	e, ok := b.byID[id]
	if !ok {
		return nil, false
	}
	return e.rec, true
}

// Identify implements Store.
func (b *Bucket) Identify(probe *sketch.Sketch) (*Record, error) {
	if probe == nil || len(probe.Movements) == 0 {
		return nil, ErrBadProbe
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.dim != 0 && len(probe.Movements) != b.dim {
		return nil, fmt.Errorf("%w: probe dimension %d, store %d", ErrBadProbe, len(probe.Movements), b.dim)
	}
	probeRes := residues(b.line, probe)
	span, t := b.line.IntervalSpan(), b.line.Threshold()
	// Enumerate the 3^indexDims neighbouring cells around the probe's cell.
	base := make([]int64, b.indexDims)
	for i := 0; i < b.indexDims; i++ {
		base[i] = b.bucketOf(probeRes[i])
	}
	offsets := make([]int64, b.indexDims)
	for i := range offsets {
		offsets[i] = -1
	}
	var found *Record
	for {
		key := b.offsetKey(base, offsets)
		for _, e := range b.cells[key] {
			if matchEntry(e, probeRes, span, t) {
				found = e.rec
				break
			}
		}
		if found != nil {
			return found, nil
		}
		// Advance the offset vector through {-1, 0, 1}^indexDims.
		i := 0
		for ; i < b.indexDims; i++ {
			offsets[i]++
			if offsets[i] <= 1 {
				break
			}
			offsets[i] = -1
		}
		if i == b.indexDims {
			break
		}
	}
	return nil, ErrNotFound
}

// bucketOf maps a residue in [0, span) to its bucket in [0, buckets).
func (b *Bucket) bucketOf(res int64) int64 {
	span := b.line.IntervalSpan()
	bk := res * b.buckets / span
	if bk >= b.buckets {
		bk = b.buckets - 1
	}
	return bk
}

func (b *Bucket) cellKey(res []int64) string {
	key := make([]byte, 0, b.indexDims*3)
	for i := 0; i < b.indexDims; i++ {
		key = appendInt(key, b.bucketOf(res[i]))
	}
	return string(key)
}

func (b *Bucket) offsetKey(base, offsets []int64) string {
	key := make([]byte, 0, len(base)*3)
	for i := range base {
		bk := (base[i] + offsets[i] + b.buckets) % b.buckets
		key = appendInt(key, bk)
	}
	return string(key)
}

// appendInt appends a compact, unambiguous encoding of v.
func appendInt(dst []byte, v int64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v), 0xFF)
}

func validateRecord(rec *Record) error {
	if rec == nil || rec.Helper == nil || rec.Helper.Sketch == nil || rec.Helper.Sketch.Sketch == nil {
		return ErrNilRecord
	}
	if rec.ID == "" {
		return fmt.Errorf("%w: empty ID", ErrNilRecord)
	}
	if len(rec.PublicKey) == 0 {
		return fmt.Errorf("%w: empty public key", ErrNilRecord)
	}
	if rec.Helper.Dimension() == 0 {
		return fmt.Errorf("%w: empty sketch", ErrNilRecord)
	}
	return nil
}

// ByStrategy constructs a store by name: "scan", "bucket" or "sorted".
func ByStrategy(name string, line *numberline.Line) (Store, error) {
	switch name {
	case "scan":
		return NewScan(line), nil
	case "bucket":
		return NewBucket(line, 0), nil
	case "sorted":
		return NewSorted(line), nil
	default:
		return nil, fmt.Errorf("store: unknown strategy %q", name)
	}
}

// Strategies lists the available lookup strategies.
func Strategies() []string { return []string{"scan", "bucket", "sorted"} }
