package store

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"fuzzyid/internal/numberline"
	"fuzzyid/internal/sketch"
)

// Sorted is the range-index store: entries are kept ordered by the residue
// of their first sketch coordinate. Identification resolves the circular
// residue range [r'-t, r'+t] with binary search (at most two contiguous
// segments because the range can wrap) and early-exit-verifies only the
// entries inside it — on average (2t+1)/ka of the database, independent of
// any bucket tuning. It complements Scan (no index) and Bucket (hash
// index): three points on the paper's "pre-computation" spectrum (§V).
type Sorted struct {
	line *numberline.Line

	mu      sync.RWMutex
	byID    map[string]*entry
	entries []*entry // ordered by res[0]
	order   []*entry // insertion order, for All()
	dim     int
}

var _ Store = (*Sorted)(nil)

// NewSorted constructs a sorted-index store over the given line.
func NewSorted(line *numberline.Line) *Sorted {
	return &Sorted{line: line, byID: make(map[string]*entry)}
}

// Strategy implements Store.
func (s *Sorted) Strategy() string { return "sorted" }

// Len implements Store.
func (s *Sorted) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Dimension implements Store.
func (s *Sorted) Dimension() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dim
}

// Insert implements Store.
func (s *Sorted) Insert(rec *Record) error {
	if err := validateRecord(rec); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[rec.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateID, rec.ID)
	}
	if s.dim == 0 {
		s.dim = rec.Helper.Dimension()
	} else if rec.Helper.Dimension() != s.dim {
		return fmt.Errorf("%w: got %d, want %d", ErrBadDimension, rec.Helper.Dimension(), s.dim)
	}
	e := &entry{rec: rec, res: residues(s.line, rec.Helper.Sketch.Sketch)}
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].res[0] >= e.res[0] })
	s.entries = append(s.entries, nil)
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
	s.order = append(s.order, e)
	s.byID[rec.ID] = e
	return nil
}

// Get implements Store.
func (s *Sorted) Get(id string) (*Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return e.rec, true
}

// Delete implements Store.
func (s *Sorted) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownID, id)
	}
	delete(s.byID, id)
	for i, cand := range s.entries {
		if cand == e {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			break
		}
	}
	for i, cand := range s.order {
		if cand == e {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}

// Replace implements Store. The single write mutex makes the remove +
// re-insert atomic to every reader; insertion order is preserved so All()
// reflects the original enrollment sequence.
func (s *Sorted) Replace(rec *Record) error {
	if err := validateRecord(rec); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.byID[rec.ID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownID, rec.ID)
	}
	if rec.Helper.Dimension() != s.dim {
		return fmt.Errorf("%w: got %d, want %d", ErrBadDimension, rec.Helper.Dimension(), s.dim)
	}
	e := &entry{rec: rec, res: residues(s.line, rec.Helper.Sketch.Sketch)}
	for i, cand := range s.entries {
		if cand == old {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			break
		}
	}
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].res[0] >= e.res[0] })
	s.entries = append(s.entries, nil)
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
	for i, cand := range s.order {
		if cand == old {
			s.order[i] = e
			break
		}
	}
	s.byID[rec.ID] = e
	return nil
}

// All implements Store.
func (s *Sorted) All() []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Record, len(s.order))
	for i, e := range s.order {
		out[i] = e.rec
	}
	return out
}

// Identify implements Store.
func (s *Sorted) Identify(probe *sketch.Sketch) (*Record, error) {
	return s.IdentifyCtx(context.Background(), probe)
}

// IdentifyCtx implements Store. The sorted walk visits at most two short
// segments, so cancellation is checked between them only.
func (s *Sorted) IdentifyCtx(ctx context.Context, probe *sketch.Sketch) (*Record, error) {
	if probe == nil || len(probe.Movements) == 0 {
		return nil, ErrBadProbe
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.dim != 0 && len(probe.Movements) != s.dim {
		return nil, fmt.Errorf("%w: probe dimension %d, store %d", ErrBadProbe, len(probe.Movements), s.dim)
	}
	probeRes := residues(s.line, probe)
	span, t := s.line.IntervalSpan(), s.line.Threshold()
	lo := probeRes[0] - t
	hi := probeRes[0] + t
	// The admissible residue range can wrap around the circle [0, span);
	// split it into at most two ordinary segments.
	type segment struct{ lo, hi int64 }
	var segments []segment
	switch {
	case lo < 0:
		segments = []segment{{0, hi}, {lo + span, span - 1}}
	case hi >= span:
		segments = []segment{{lo, span - 1}, {0, hi - span}}
	default:
		segments = []segment{{lo, hi}}
	}
	for _, seg := range segments {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].res[0] >= seg.lo })
		for i := start; i < len(s.entries) && s.entries[i].res[0] <= seg.hi; i++ {
			if matchEntry(s.entries[i], probeRes, span, t) {
				return s.entries[i].rec, nil
			}
		}
	}
	return nil, ErrNotFound
}

// IdentifyBatch implements Store by resolving each probe with the range
// index in turn (the per-probe work is already logarithmic, so there is
// little to amortise beyond validation).
func (s *Sorted) IdentifyBatch(probes []*sketch.Sketch) ([]*Record, error) {
	s.mu.RLock()
	dim := s.dim
	s.mu.RUnlock()
	for i, p := range probes {
		if err := validateProbe(p, dim); err != nil {
			return nil, fmt.Errorf("probe %d: %w", i, err)
		}
	}
	out := make([]*Record, len(probes))
	for i, p := range probes {
		rec, err := s.Identify(p)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			return nil, err
		}
		out[i] = rec
	}
	return out, nil
}
