package store

import (
	"fmt"
	"math/bits"

	"fuzzyid/internal/numberline"
)

// This file implements the packed residue matrix behind the sharded table of
// table.go, plus the two-level coarse pre-filter that makes the open-set
// (no-match) worst case cheap.
//
// Residues live in [0, ka): the interval span ka is fixed when the number
// line is built, so the narrowest machine integer that holds ka-1 is known
// before the first insert. Packing the flat row-major matrix to int16 or
// int32 halves or quarters the bytes the scan streams per row — and at
// millions of records the scan is memory-bandwidth-bound, not CPU-bound
// (the paper's decode/check per candidate is O(1); the search dominates).
//
// Three layers:
//
//   - matrix[T]: the generic packed storage with a width-erased resMatrix
//     interface. Interface dispatch happens once per scanned *range* (a
//     scanBlock of rows), never per row, so the hot loop is monomorphic.
//   - matchPacked: the block-vectorized condition check. The per-coordinate
//     early exit of matchRow is restructured into fixed-width blocks of
//     branchless circular-distance lanes whose verdicts OR together; the
//     geometric early exit applies per block instead of per element, which
//     trades a handful of redundant subtractions for a loop body the
//     compiler keeps free of unpredictable branches.
//   - coarseParams/coarseProbe: a per-row uint64 summary of the bucketed
//     leading residues, checked before the row is touched at all. A probe
//     admits a row only if every summarised coordinate lies in the same or
//     an adjacent circular bucket, so a random (open-set) probe rejects all
//     but ~(3/B)^F of rows after reading just 8 bytes per row.

// resWord is the set of storage widths a residue matrix can pack to.
type resWord interface {
	~int16 | ~int32 | ~int64
}

// Residue storage widths accepted by Tuning.ResidueWidth.
const (
	Width16 = 16
	Width32 = 32
	Width64 = 64
)

// widthForSpan returns the narrowest storage width whose signed range holds
// every residue in [0, span).
func widthForSpan(span int64) int {
	switch {
	case span <= 1<<15:
		return Width16
	case span <= 1<<31:
		return Width32
	default:
		return Width64
	}
}

// resolveWidth validates a requested storage width against the line's span.
// 0 selects the automatic (narrowest safe) width; an explicit request may
// only widen it — a debug override that forces the pre-packing int64 layout
// is legitimate, a width that cannot hold the residues is not.
func resolveWidth(requested int, span int64) (int, error) {
	need := widthForSpan(span)
	switch requested {
	case 0:
		return need, nil
	case Width16, Width32, Width64:
		if requested < need {
			return 0, fmt.Errorf("store: residue width %d cannot hold span %d (needs %d)", requested, span, need)
		}
		return requested, nil
	default:
		return 0, fmt.Errorf("store: invalid residue width %d (want 0, 16, 32 or 64)", requested)
	}
}

// matchBlock is the number of coordinates checked per early-exit decision in
// matchPacked. Eight lanes of int64 arithmetic fit comfortably in registers
// and give the compiler a fixed-trip-count inner loop to unroll.
const matchBlock = 8

// matchPacked runs the condition (1)-(4) circular-distance check of the
// probe residues against one packed row. Semantically identical to matchRow
// (the int64 reference implementation in table.go); structurally it is a
// block loop whose body is branch-free: each lane folds its verdict into an
// accumulator sign bit, and the block rejects if any lane exceeded the
// threshold.
func matchPacked[T resWord](row []T, probe []int64, span, t int64) bool {
	i := 0
	for ; i+matchBlock <= len(row); i += matchBlock {
		var bad int64
		for j := 0; j < matchBlock; j++ {
			d := int64(row[i+j]) - probe[i+j]
			m := d >> 63 // branchless |d|
			d = (d ^ m) - m
			if e := span - d; e < d { // compiles to CMOV, not a branch
				d = e
			}
			bad |= t - d // sign bit set iff d > t
		}
		if bad < 0 {
			return false
		}
	}
	for ; i < len(row); i++ {
		d := int64(row[i]) - probe[i]
		if d < 0 {
			d = -d
		}
		if e := span - d; e < d {
			d = e
		}
		if d > t {
			return false
		}
	}
	return true
}

// resMatrix is the width-erased interface over the packed flat row-major
// residue matrix of one shard. The granularity of every scanning method is a
// row range, so the per-row hot path never pays interface dispatch.
type resMatrix interface {
	// width returns the storage width in bits.
	width() int
	// appendRow packs res onto the end of the matrix.
	appendRow(res []int64)
	// copyRow unpacks row into dst (len(dst) == dim).
	copyRow(dst []int64, row, dim int)
	// moveRow overwrites row dst with row src (swap-delete relocation).
	moveRow(dst, src, dim int)
	// setRow overwrites row in place with res (re-enroll replacement).
	setRow(row int, res []int64)
	// truncate shrinks the matrix to the given row count.
	truncate(rows, dim int)
	// matchOne checks the probe against a single row.
	matchOne(row, dim int, probe []int64, span, t int64) bool
	// scanRange checks the probe against rows [lo, hi), consulting the
	// coarse summary first when cp is enabled, and returns the first
	// matching row index or -1.
	scanRange(lo, hi, dim int, probe []int64, span, t int64, coarse []uint64, cp coarseProbe) int
}

// matrix is the generic packed storage instantiated at one of the three
// widths by newMatrix.
type matrix[T resWord] struct {
	data []T
	w    int
}

// newMatrix constructs the packed matrix for a resolved storage width.
func newMatrix(width int) resMatrix {
	switch width {
	case Width16:
		return &matrix[int16]{w: Width16}
	case Width32:
		return &matrix[int32]{w: Width32}
	default:
		return &matrix[int64]{w: Width64}
	}
}

func (m *matrix[T]) width() int { return m.w }

func (m *matrix[T]) appendRow(res []int64) {
	if need := len(m.data) + len(res); cap(m.data) < need {
		grown := make([]T, len(m.data), need+need/2)
		copy(grown, m.data)
		m.data = grown
	}
	for _, r := range res {
		m.data = append(m.data, T(r))
	}
}

func (m *matrix[T]) copyRow(dst []int64, row, dim int) {
	src := m.data[row*dim : (row+1)*dim]
	for j := range dst {
		dst[j] = int64(src[j])
	}
}

func (m *matrix[T]) moveRow(dst, src, dim int) {
	copy(m.data[dst*dim:(dst+1)*dim], m.data[src*dim:(src+1)*dim])
}

func (m *matrix[T]) setRow(row int, res []int64) {
	dst := m.data[row*len(res) : (row+1)*len(res)]
	for j, r := range res {
		dst[j] = T(r)
	}
}

func (m *matrix[T]) truncate(rows, dim int) {
	m.data = m.data[:rows*dim]
}

func (m *matrix[T]) matchOne(row, dim int, probe []int64, span, t int64) bool {
	off := row * dim
	return matchPacked(m.data[off:off+dim], probe, span, t)
}

func (m *matrix[T]) scanRange(lo, hi, dim int, probe []int64, span, t int64, coarse []uint64, cp coarseProbe) int {
	if cp.enabled {
		for i := lo; i < hi; i++ {
			if !cp.admit(coarse[i]) {
				continue
			}
			off := i * dim
			if matchPacked(m.data[off:off+dim], probe, span, t) {
				return i
			}
		}
		return -1
	}
	for i := lo; i < hi; i++ {
		off := i * dim
		if matchPacked(m.data[off:off+dim], probe, span, t) {
			return i
		}
	}
	return -1
}

// Coarse pre-filter sizing limits.
const (
	// maxCoarseBuckets caps buckets per summarised coordinate so the
	// per-coordinate allowed set fits a uint16 bitmask.
	maxCoarseBuckets = 16
	// minCoarseBuckets is the floor below which the filter is vacuous: with
	// B < 4 every bucket is its own neighbour's neighbour, so the allowed
	// mask admits everything.
	minCoarseBuckets = 4
	// maxCoarseFields bounds the summarised coordinates: 64 key bits at a
	// minimum of 2 bits per coordinate.
	maxCoarseFields = 32
	// maxCoarseSpan guards the res*buckets products against int64 overflow
	// (the number line caps spans at 2^61; buckets at 16 needs 4 more bits).
	maxCoarseSpan = 1 << 59
)

// coarseParams describes the per-row coarse summary adopted by a table once
// its dimension is known. Bucketing is multiplicative — bucket(r) =
// r*buckets/span, uniform circular arcs — which is what makes the filter
// sound: buckets <= span/t guarantees that two residues within circular
// distance t land in the same or circularly adjacent buckets (a division-
// based bucket width would break this at the ring seam whenever span is not
// a multiple of the width). Neighbour admission then can never reject a true
// match; see the equivalence and soundness tests in packed_test.go.
type coarseParams struct {
	enabled bool
	buckets int64  // B: buckets per summarised coordinate
	bits    uint   // key bits per coordinate
	mask    uint64 // (1 << bits) - 1
	fields  int    // F: summarised coordinates (leading F of each row)
	span    int64
}

// coarseParamsFor sizes the filter for a line and record dimension.
func coarseParamsFor(line *numberline.Line, dim int, disabled bool) coarseParams {
	span, t := line.IntervalSpan(), line.Threshold()
	if disabled || span > maxCoarseSpan || dim == 0 {
		return coarseParams{}
	}
	b := int64(maxCoarseBuckets)
	if t > 0 && span/t < b {
		b = span / t // bucket arc >= t, the soundness condition
	}
	if b < minCoarseBuckets {
		return coarseParams{}
	}
	kb := uint(bits.Len64(uint64(b - 1)))
	f := 64 / int(kb)
	if f > maxCoarseFields {
		f = maxCoarseFields
	}
	if f > dim {
		f = dim
	}
	return coarseParams{
		enabled: true,
		buckets: b,
		bits:    kb,
		mask:    uint64(1)<<kb - 1,
		fields:  f,
		span:    span,
	}
}

// keyOf packs the bucket indices of the row's leading fields coordinates
// into the per-row summary word.
func (c coarseParams) keyOf(res []int64) uint64 {
	if !c.enabled {
		return 0
	}
	var key uint64
	for i := 0; i < c.fields; i++ {
		key |= uint64(res[i]*c.buckets/c.span) << (uint(i) * c.bits)
	}
	return key
}

// coarseProbe is the probe-side admission test: per summarised coordinate, a
// bitmask of the probe's own bucket and its two circular neighbours. It is
// plain value state (no pointers) so Identify can keep it on the stack.
type coarseProbe struct {
	enabled bool
	fields  int
	bits    uint
	mask    uint64
	allowed [maxCoarseFields]uint16
}

// probe builds the admission masks for one probe's residues.
func (c coarseParams) probe(res []int64) coarseProbe {
	var cp coarseProbe
	if !c.enabled {
		return cp
	}
	cp.enabled, cp.fields, cp.bits, cp.mask = true, c.fields, c.bits, c.mask
	for i := 0; i < c.fields; i++ {
		b := res[i] * c.buckets / c.span
		lo := (b - 1 + c.buckets) % c.buckets
		hi := (b + 1) % c.buckets
		cp.allowed[i] = 1<<uint(b) | 1<<uint(lo) | 1<<uint(hi)
	}
	return cp
}

// admit reports whether a row with the given summary key can possibly match
// the probe. False means provably no match; true means the full row check
// must run.
func (cp *coarseProbe) admit(key uint64) bool {
	for i := 0; i < cp.fields; i++ {
		if cp.allowed[i]>>(key&cp.mask)&1 == 0 {
			return false
		}
		key >>= cp.bits
	}
	return true
}
