package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"fuzzyid/internal/sketch"
)

// reenrollFixture builds two full record versions of the same ID ("flip")
// plus a stable background population, with precomputed probes for each
// version. Replacing flip back and forth between the versions while readers
// hammer it is the torn-template detector: a reader that ever sees version
// A's index row paired with version B's record payload (or any mix of the
// two public keys and helpers) has observed a half-replaced template.
type reenrollFixture struct {
	f              *fixture
	recA, recB     *Record
	probeA, probeB *sketch.Sketch
	stable         []*Record
	stableProbes   []*sketch.Sketch
}

func newReenrollFixture(t *testing.T, seed int64) *reenrollFixture {
	t.Helper()
	f := newFixture(t, 32, seed)
	rf := &reenrollFixture{f: f}
	mkRec := func(version string) (*Record, *sketch.Sketch) {
		u := f.src.NewUser("flip")
		_, helper, err := f.fe.Gen(u.Template)
		if err != nil {
			t.Fatal(err)
		}
		reading, err := f.src.GenuineReading(u)
		if err != nil {
			t.Fatal(err)
		}
		return &Record{ID: "flip", PublicKey: []byte("pk-" + version), Helper: helper}, f.probe(t, reading)
	}
	rf.recA, rf.probeA = mkRec("A")
	rf.recB, rf.probeB = mkRec("B")
	for _, u := range f.src.Population(12) {
		_, helper, err := f.fe.Gen(u.Template)
		if err != nil {
			t.Fatal(err)
		}
		rf.stable = append(rf.stable, &Record{ID: u.ID, PublicKey: []byte("pk"), Helper: helper})
		reading, err := f.src.GenuineReading(u)
		if err != nil {
			t.Fatal(err)
		}
		rf.stableProbes = append(rf.stableProbes, f.probe(t, reading))
	}
	return rf
}

// seed populates s with the stable records and version A of flip.
func (rf *reenrollFixture) seed(t *testing.T, s Store) {
	t.Helper()
	for _, rec := range rf.stable {
		if err := s.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Insert(rf.recA); err != nil {
		t.Fatal(err)
	}
}

// version classifies a record returned for flip; "" means torn.
func (rf *reenrollFixture) version(rec *Record) string {
	switch {
	case string(rec.PublicKey) == "pk-A" && rec.Helper == rf.recA.Helper:
		return "A"
	case string(rec.PublicKey) == "pk-B" && rec.Helper == rf.recB.Helper:
		return "B"
	default:
		return ""
	}
}

// raceVariants is the strategy x residue-width matrix the concurrency tests
// run against: both lookup strategies at both packed widths, plus the
// ordered store (which has no packed representation to tune).
func raceVariants(t *testing.T, f *fixture) map[string]Store {
	t.Helper()
	line := f.fe.Line()
	variants := map[string]Store{"sorted": NewSorted(line)}
	for _, w := range []int{Width16, Width64} {
		scan, err := NewScanTuned(line, 0, Tuning{ResidueWidth: w})
		if err != nil {
			t.Fatal(err)
		}
		variants[fmt.Sprintf("scan-w%d", w)] = scan
		bucket, err := NewBucketTuned(line, 0, 0, Tuning{ResidueWidth: w})
		if err != nil {
			t.Fatal(err)
		}
		variants[fmt.Sprintf("bucket-w%d", w)] = bucket
	}
	return variants
}

// TestConcurrentReplaceNeverTorn races Replace against Get and Identify on
// the same ID (the store-level legs of re-enroll vs verify/identify). Run
// with -race. Every observation must be exactly version A or exactly
// version B: matching one version's index row but returning the other
// version's record — or any cross of public key and helper — is a torn
// template and fails the test.
func TestConcurrentReplaceNeverTorn(t *testing.T) {
	rf := newReenrollFixture(t, 28)
	for name, s := range raceVariants(t, rf.f) {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			rf.seed(t, s)
			var wg sync.WaitGroup
			wg.Add(5)
			go func() { // re-enroller: flip between the two versions
				defer wg.Done()
				for i := 0; i < 150; i++ {
					rec := rf.recA
					if i%2 == 1 {
						rec = rf.recB
					}
					if err := s.Replace(rec); err != nil {
						t.Errorf("%s Replace: %v", name, err)
						return
					}
				}
			}()
			go func() { // verifier leg: Get must always see one whole version
				defer wg.Done()
				for i := 0; i < 400; i++ {
					rec, ok := s.Get("flip")
					if !ok {
						t.Errorf("%s Get(flip) missed during replace", name)
						return
					}
					if rf.version(rec) == "" {
						t.Errorf("%s Get(flip) observed a torn record: pk=%q", name, rec.PublicKey)
						return
					}
				}
			}()
			identifier := func(probe *sketch.Sketch, want string) func() {
				return func() { // identify leg: a hit must be the whole matching version
					defer wg.Done()
					for i := 0; i < 120; i++ {
						rec, err := s.Identify(probe)
						if errors.Is(err, ErrNotFound) {
							continue // the other version is enrolled right now
						}
						if err != nil {
							t.Errorf("%s Identify: %v", name, err)
							return
						}
						if rec.ID == "flip" && rf.version(rec) != want {
							t.Errorf("%s Identify matched version %s's template but returned pk=%q",
								name, want, rec.PublicKey)
							return
						}
					}
				}
			}
			go identifier(rf.probeA, "A")()
			go identifier(rf.probeB, "B")()
			go func() { // bystanders must be untouched by the churn
				defer wg.Done()
				for i := 0; i < 100; i++ {
					j := i % len(rf.stableProbes)
					rec, err := s.Identify(rf.stableProbes[j])
					if err != nil || rec.ID != rf.stable[j].ID {
						t.Errorf("%s stable Identify = (%v, %v)", name, rec, err)
						return
					}
				}
			}()
			wg.Wait()
			if t.Failed() {
				return
			}
			// Quiesced: exactly one whole version, correct population count,
			// and the index agrees with the record payload.
			if got := s.Len(); got != len(rf.stable)+1 {
				t.Fatalf("%s Len = %d, want %d", name, got, len(rf.stable)+1)
			}
			rec, ok := s.Get("flip")
			if !ok || rf.version(rec) == "" {
				t.Fatalf("%s final Get(flip) = (%v, %v)", name, rec, ok)
			}
			if err := s.Replace(rf.recA); err != nil {
				t.Fatal(err)
			}
			if rec, err := s.Identify(rf.probeA); err != nil || rf.version(rec) != "A" {
				t.Fatalf("%s post-settle Identify(A) = (%v, %v)", name, rec, err)
			}
			if _, err := s.Identify(rf.probeB); !errors.Is(err, ErrNotFound) {
				t.Fatalf("%s replaced-away template still identifiable: %v", name, err)
			}
		})
	}
}

// TestConcurrentReplaceVsRevoke races Replace against Delete on the same ID
// (re-enroll vs revoke). Run with -race. Once the delete lands, further
// replaces must fail with ErrUnknownID — never resurrect the record — and
// the store must end with the ID gone.
func TestConcurrentReplaceVsRevoke(t *testing.T) {
	rf := newReenrollFixture(t, 29)
	for name, s := range raceVariants(t, rf.f) {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			rf.seed(t, s)
			var wg sync.WaitGroup
			wg.Add(3)
			go func() { // re-enroller, racing the revoke below
				defer wg.Done()
				for i := 0; i < 200; i++ {
					rec := rf.recA
					if i%2 == 1 {
						rec = rf.recB
					}
					if err := s.Replace(rec); err != nil && !errors.Is(err, ErrUnknownID) {
						t.Errorf("%s Replace: %v", name, err)
						return
					}
				}
			}()
			go func() { // revoker
				defer wg.Done()
				if err := s.Delete("flip"); err != nil {
					t.Errorf("%s Delete: %v", name, err)
				}
			}()
			go func() { // reader: whole version until gone, never torn
				defer wg.Done()
				for i := 0; i < 300; i++ {
					rec, ok := s.Get("flip")
					if ok && rf.version(rec) == "" {
						t.Errorf("%s Get(flip) observed a torn record: pk=%q", name, rec.PublicKey)
						return
					}
				}
			}()
			wg.Wait()
			if t.Failed() {
				return
			}
			if _, ok := s.Get("flip"); ok {
				t.Fatalf("%s revoked ID still present after replace storm", name)
			}
			if err := s.Replace(rf.recA); !errors.Is(err, ErrUnknownID) {
				t.Fatalf("%s Replace after revoke = %v, want ErrUnknownID", name, err)
			}
			if got := s.Len(); got != len(rf.stable) {
				t.Fatalf("%s Len = %d, want %d", name, got, len(rf.stable))
			}
			for j, probe := range rf.stableProbes {
				if rec, err := s.Identify(probe); err != nil || rec.ID != rf.stable[j].ID {
					t.Fatalf("%s stable Identify = (%v, %v)", name, rec, err)
				}
			}
		})
	}
}

// TestJournaledConcurrentReplace races Replace through the journal seam:
// every successful replace must be journaled exactly once as a
// tenant-stamped OpReplace, so the WAL and the replication stream replay to
// the same final template the readers observed (no acked-but-unjournaled
// swap, no journaled-but-unapplied one). Run with -race.
func TestJournaledConcurrentReplace(t *testing.T) {
	rf := newReenrollFixture(t, 30)
	j := &memJournal{}
	db := NewJournaled(NewScan(rf.f.fe.Line()), j)
	rf.seed(t, db)
	seeded := len(j.log)
	const swaps = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			rec := rf.recA
			if i%2 == 1 {
				rec = rf.recB
			}
			if err := db.Replace(rec); err != nil {
				t.Errorf("Replace: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			if rec, ok := db.Get("flip"); !ok || rf.version(rec) == "" {
				t.Errorf("torn or missing record through the journal seam")
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := len(j.log) - seeded; got != swaps {
		t.Fatalf("journal recorded %d replace mutations, want %d", got, swaps)
	}
	for _, m := range j.log[seeded:] {
		if m.Op != OpReplace || m.ID != "flip" || m.Tenant != "" || m.Record == nil {
			t.Fatalf("journaled mutation = %+v, want default-tenant OpReplace of flip", m)
		}
	}
	// The journal replays to the same record the live store holds.
	last := j.log[len(j.log)-1].Record
	live, ok := db.Get("flip")
	if !ok || rf.version(live) == "" || string(live.PublicKey) != string(last.PublicKey) {
		t.Fatalf("live record pk=%q diverges from last journaled replace pk=%q", live.PublicKey, last.PublicKey)
	}
}
