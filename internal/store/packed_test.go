package store

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"fuzzyid/internal/numberline"
)

// This file property-tests the packed residue matrix of packed.go against
// the int64 reference implementation (matchRow): every storage width and
// coarse-filter setting must produce the exact same match sets, across a
// sweep of ka spans that covers all three widths and the filter's sizing
// edge cases.

// sweepLine is one number-line configuration of the equivalence sweep.
type sweepLine struct {
	name   string
	params numberline.Params
	dim    int
}

// sweepLines covers: all three storage widths (including the 16-bit
// boundary span), the coarse filter at its smallest (B=4) and largest
// (B=16) sizing, a span/t ratio that auto-disables the filter, t=0, and a
// span past maxCoarseSpan that trips the overflow guard. Dimensions are
// chosen to exercise both the full blocks and the scalar tail of
// matchPacked (dim % matchBlock != 0).
func sweepLines() []sweepLine {
	return []sweepLine{
		{"w16-paper-B4", numberline.Params{A: 100, K: 4, V: 500, T: 100}, 19},
		{"w16-ratio-disables", numberline.Params{A: 10, K: 2, V: 10, T: 9}, 8},
		{"w16-t0-B16", numberline.Params{A: 100, K: 2, V: 5, T: 0}, 33},
		{"w16-boundary", numberline.Params{A: 16384, K: 2, V: 2, T: 100}, 12},
		{"w32-B16", numberline.Params{A: 16384, K: 4, V: 4, T: 5}, 19},
		{"w32-B8", numberline.Params{A: 16384, K: 4, V: 4, T: 8191}, 7},
		{"w64", numberline.Params{A: 1 << 30, K: 4, V: 2, T: 99}, 19},
		{"w64-span-guard", numberline.Params{A: 1 << 58, K: 4, V: 2, T: 1000}, 9},
	}
}

// validWidths lists the storage widths (plus 0 = auto) that can hold the
// span.
func validWidths(span int64) []int {
	out := []int{0}
	for _, w := range []int{Width16, Width32, Width64} {
		if w >= widthForSpan(span) {
			out = append(out, w)
		}
	}
	return out
}

// randRow draws a uniform residue row in [0, span)^dim.
func randRow(rng *rand.Rand, dim int, span int64) []int64 {
	row := make([]int64, dim)
	for i := range row {
		row[i] = rng.Int63n(span)
	}
	return row
}

// mod wraps v onto [0, span).
func mod(v, span int64) int64 {
	v %= span
	if v < 0 {
		v += span
	}
	return v
}

// refMatches brute-forces the match set with the reference matchRow.
func refMatches(rows map[string][]int64, probe []int64, span, t int64) map[string]bool {
	out := make(map[string]bool)
	for id, row := range rows {
		if matchRow(row, probe, span, t) {
			out[id] = true
		}
	}
	return out
}

// tableMatches collects every matching row ID through the packed scanRange
// path, coarse filter included — the same code Identify runs.
func tableMatches(tab *resTable, probe []int64) map[string]bool {
	span, t := tab.line.IntervalSpan(), tab.line.Threshold()
	cp := tab.probeFilter(probe)
	dim := len(probe)
	out := make(map[string]bool)
	for si := range tab.shards {
		sh := &tab.shards[si]
		sh.mu.RLock()
		n := len(sh.recs)
		for i := 0; i < n; {
			j := sh.mat.scanRange(i, n, dim, probe, span, t, sh.coarse, cp)
			if j < 0 {
				break
			}
			out[sh.recs[j].ID] = true
			i = j + 1
		}
		sh.mu.RUnlock()
	}
	return out
}

// sweepProbes builds genuine-ish, boundary and random probes against the
// stored rows: per-coordinate perturbations within t (must match), exact-t
// and wraparound offsets (boundary), t+1 on one coordinate (must not match
// that row), and uniform noise (open set).
func sweepProbes(rng *rand.Rand, rows [][]int64, span, t int64) [][]int64 {
	var probes [][]int64
	perturb := func(row []int64, d func(i int) int64) []int64 {
		p := make([]int64, len(row))
		for i, r := range row {
			p[i] = mod(r+d(i), span)
		}
		return p
	}
	for k := 0; k < 8 && k < len(rows); k++ {
		row := rows[rng.Intn(len(rows))]
		if t > 0 {
			probes = append(probes, perturb(row, func(int) int64 { return rng.Int63n(2*t+1) - t }))
		}
		probes = append(probes,
			perturb(row, func(int) int64 { return 0 }),
			perturb(row, func(i int) int64 { // alternating exact-threshold offsets
				if i%2 == 0 {
					return t
				}
				return -t
			}),
		)
		if t+1 < span-(t+1) { // one coordinate just past threshold: no match on this row
			p := perturb(row, func(int) int64 { return 0 })
			p[len(p)-1] = mod(p[len(p)-1]+t+1, span)
			probes = append(probes, p)
		}
	}
	for k := 0; k < 8; k++ {
		probes = append(probes, randRow(rng, len(rows[0]), span))
	}
	return probes
}

// TestPackedScanEquivalence is the satellite property test: every storage
// width times coarse on/off returns exactly the reference int64 match set,
// for every line of the sweep, before and after swap-deletes.
func TestPackedScanEquivalence(t *testing.T) {
	for _, sl := range sweepLines() {
		sl := sl
		t.Run(sl.name, func(t *testing.T) {
			line, err := numberline.New(sl.params)
			if err != nil {
				t.Fatal(err)
			}
			span, th := line.IntervalSpan(), line.Threshold()
			rng := rand.New(rand.NewSource(7))
			const n = 200
			rows := make([][]int64, n)
			ref := make(map[string][]int64, n)
			for i := range rows {
				rows[i] = randRow(rng, sl.dim, span)
				ref[fmt.Sprint(i)] = rows[i]
			}

			type cfg struct {
				name string
				tab  *resTable
			}
			var cfgs []cfg
			for _, w := range validWidths(span) {
				for _, noCoarse := range []bool{false, true} {
					tab, err := newResTableTuned(line, 5, Tuning{ResidueWidth: w, NoCoarseFilter: noCoarse})
					if err != nil {
						t.Fatal(err)
					}
					for i := range rows {
						if _, err := tab.insert(&Record{ID: fmt.Sprint(i)}, rows[i]); err != nil {
							t.Fatal(err)
						}
					}
					cfgs = append(cfgs, cfg{fmt.Sprintf("w%d-coarse%v", w, !noCoarse), tab})
				}
			}

			check := func(stage string, probes [][]int64) {
				for pi, probe := range probes {
					want := refMatches(ref, probe, span, th)
					for _, c := range cfgs {
						got := tableMatches(c.tab, probe)
						if len(got) != len(want) {
							t.Fatalf("%s %s probe %d: got %d matches, want %d", stage, c.name, pi, len(got), len(want))
						}
						for id := range want {
							if !got[id] {
								t.Fatalf("%s %s probe %d: missing match %s", stage, c.name, pi, id)
							}
						}
					}
				}
			}
			check("full", sweepProbes(rng, rows, span, th))

			// Swap-delete a third of the rows (coarse keys and packed rows
			// must relocate together) and re-verify.
			for i := 0; i < n; i += 3 {
				delete(ref, fmt.Sprint(i))
				for _, c := range cfgs {
					if _, _, err := c.tab.delete(fmt.Sprint(i)); err != nil {
						t.Fatal(err)
					}
				}
			}
			var kept [][]int64
			for _, row := range ref {
				kept = append(kept, row)
			}
			check("after-delete", sweepProbes(rng, kept, span, th))
		})
	}
}

// TestCoarseFilterSoundness pins the filter's safety property directly: a
// probe within per-coordinate circular distance t of a row always admits
// that row's key, for every sweep line where the filter is live.
func TestCoarseFilterSoundness(t *testing.T) {
	for _, sl := range sweepLines() {
		line, err := numberline.New(sl.params)
		if err != nil {
			t.Fatal(err)
		}
		c := coarseParamsFor(line, sl.dim, false)
		if !c.enabled {
			continue
		}
		span, th := line.IntervalSpan(), line.Threshold()
		rng := rand.New(rand.NewSource(11))
		for iter := 0; iter < 2000; iter++ {
			row := randRow(rng, sl.dim, span)
			probe := make([]int64, sl.dim)
			for i, r := range row {
				d := int64(0)
				if th > 0 {
					d = rng.Int63n(2*th+1) - th
				}
				probe[i] = mod(r+d, span)
			}
			cp := c.probe(probe)
			if !cp.admit(c.keyOf(row)) {
				t.Fatalf("%s: coarse filter rejected a true match (row %v, probe %v)", sl.name, row, probe)
			}
		}
	}
}

// TestWidthForSpan pins the automatic width rule at its boundaries.
func TestWidthForSpan(t *testing.T) {
	cases := []struct {
		span int64
		want int
	}{
		{2, Width16},
		{1 << 15, Width16},
		{1<<15 + 1, Width32},
		{1 << 31, Width32},
		{1<<31 + 1, Width64},
		{1 << 61, Width64},
	}
	for _, c := range cases {
		if got := widthForSpan(c.span); got != c.want {
			t.Errorf("widthForSpan(%d) = %d, want %d", c.span, got, c.want)
		}
	}
}

// TestResolveWidth pins the override rule: automatic by default, widening
// allowed, narrowing and junk rejected.
func TestResolveWidth(t *testing.T) {
	if w, err := resolveWidth(0, 400); err != nil || w != Width16 {
		t.Errorf("auto = (%d, %v), want (16, nil)", w, err)
	}
	if w, err := resolveWidth(64, 400); err != nil || w != Width64 {
		t.Errorf("widen = (%d, %v), want (64, nil)", w, err)
	}
	if _, err := resolveWidth(16, 1<<20); err == nil {
		t.Error("narrowing accepted")
	}
	if _, err := resolveWidth(24, 400); err == nil {
		t.Error("junk width accepted")
	}
}

// TestScanTunedRejectsNarrowWidth checks the error surfaces through the
// public constructors.
func TestScanTunedRejectsNarrowWidth(t *testing.T) {
	line := numberline.MustNew(numberline.Params{A: 16384, K: 4, V: 4, T: 5}) // span 65536
	if _, err := NewScanTuned(line, 0, Tuning{ResidueWidth: 16}); err == nil {
		t.Error("NewScanTuned accepted a width too narrow for the span")
	}
	if _, err := NewBucketTuned(line, 0, 0, Tuning{ResidueWidth: 16}); err == nil {
		t.Error("NewBucketTuned accepted a width too narrow for the span")
	}
	if _, err := ByStrategyTuned("scan", line, 0, Tuning{ResidueWidth: 8}); err == nil {
		t.Error("ByStrategyTuned accepted an invalid width")
	}
}

// TestScanStoreWidthEquivalence runs the equivalence end to end through the
// Store interface with real sketches: genuine and impostor probes resolve
// identically under every width and filter setting.
func TestScanStoreWidthEquivalence(t *testing.T) {
	f := newFixture(t, 32, 63)
	line := f.fe.Line()
	variants := map[string]Store{}
	for _, w := range validWidths(line.IntervalSpan()) {
		for _, noCoarse := range []bool{false, true} {
			s, err := NewScanTuned(line, 6, Tuning{ResidueWidth: w, NoCoarseFilter: noCoarse})
			if err != nil {
				t.Fatal(err)
			}
			variants[fmt.Sprintf("w%d-coarse%v", w, !noCoarse)] = s
		}
	}
	users := f.src.Population(60)
	for _, u := range users {
		_, helper, err := f.fe.Gen(u.Template)
		if err != nil {
			t.Fatal(err)
		}
		rec := &Record{ID: u.ID, PublicKey: []byte("pk"), Helper: helper}
		for name, s := range variants {
			if err := s.Insert(rec); err != nil {
				t.Fatalf("%s Insert: %v", name, err)
			}
		}
	}
	for _, u := range users[:20] {
		reading, err := f.src.GenuineReading(u)
		if err != nil {
			t.Fatal(err)
		}
		probe := f.probe(t, reading)
		for name, s := range variants {
			rec, err := s.Identify(probe)
			if err != nil || rec.ID != u.ID {
				t.Fatalf("%s Identify(%s) = (%v, %v)", name, u.ID, rec, err)
			}
		}
	}
	for i := 0; i < 20; i++ {
		probe := f.probe(t, f.src.ImpostorReading())
		for name, s := range variants {
			if _, err := s.Identify(probe); !errors.Is(err, ErrNotFound) {
				t.Fatalf("%s impostor err = %v, want ErrNotFound", name, err)
			}
		}
	}
}

// TestResBufHint pins the satellite fix: pooled probe buffers are sized
// from the live store dimension instead of the historical 256 cap.
func TestResBufHint(t *testing.T) {
	raiseResBufHint(4096)
	b := getResBuf()
	if cap(*b) < 4096 {
		t.Fatalf("pooled buffer cap %d after hint 4096", cap(*b))
	}
	putResBuf(b)
	// Adoption raises the hint as a side effect of the first insert.
	line := numberline.MustNew(numberline.Params{A: 100, K: 4, V: 500, T: 100})
	tab := newResTable(line, 2)
	rng := rand.New(rand.NewSource(3))
	if _, err := tab.insert(&Record{ID: "big"}, randRow(rng, 5000, line.IntervalSpan())); err != nil {
		t.Fatal(err)
	}
	if h := resBufHint.Load(); h < 5000 {
		t.Fatalf("resBufHint = %d after adopting dim 5000", h)
	}
	b = getResBuf()
	if cap(*b) < 5000 {
		t.Fatalf("pooled buffer cap %d after adopting dim 5000", cap(*b))
	}
	putResBuf(b)
}

// FuzzMatchPacked cross-checks the packed block-vectorized matcher against
// the reference matchRow at every width, and the coarse filter's admission
// against any match it finds, over fuzzer-chosen spans, thresholds and
// residues.
func FuzzMatchPacked(f *testing.F) {
	f.Add(uint16(200), uint16(50), []byte("0123456789abcdef0123"))
	f.Add(uint16(16383), uint16(0), []byte{0, 255, 128, 1, 254, 2, 253, 127, 129, 64})
	f.Add(uint16(1), uint16(9999), []byte{9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, a, th uint16, data []byte) {
		span := 2 * (int64(a)%16384 + 1) // even, in [2, 32768]: all widths can hold it
		tt := int64(th) % (span / 2)
		dim := len(data) / 2
		if dim == 0 {
			return
		}
		row := make([]int64, dim)
		row16 := make([]int16, dim)
		row32 := make([]int32, dim)
		probe := make([]int64, dim)
		for i := 0; i < dim; i++ {
			r := int64(data[i]) * span / 256
			row[i], row16[i], row32[i] = r, int16(r), int32(r)
			probe[i] = int64(data[dim+i]) * span / 256
		}
		want := matchRow(row, probe, span, tt)
		if got := matchPacked(row16, probe, span, tt); got != want {
			t.Fatalf("matchPacked[int16] = %v, reference %v (span %d, t %d, row %v, probe %v)", got, want, span, tt, row, probe)
		}
		if got := matchPacked(row32, probe, span, tt); got != want {
			t.Fatalf("matchPacked[int32] = %v, reference %v (span %d, t %d)", got, want, span, tt)
		}
		if got := matchPacked(row, probe, span, tt); got != want {
			t.Fatalf("matchPacked[int64] = %v, reference %v (span %d, t %d)", got, want, span, tt)
		}
		line, err := numberline.New(numberline.Params{A: span / 2, K: 2, V: 2, T: tt})
		if err != nil {
			return
		}
		c := coarseParamsFor(line, dim, false)
		if c.enabled && want {
			cp := c.probe(probe)
			if !cp.admit(c.keyOf(row)) {
				t.Fatalf("coarse filter rejected a matching row (span %d, t %d, row %v, probe %v)", span, tt, row, probe)
			}
		}
	})
}
