package store

// This file adds multi-tenant namespaces on top of the store layer: a
// Registry owns one independent Store per named tenant, each behind its own
// journal seam, so a single server process can host many isolated
// identification populations (per-app enrollments, per-region databases,
// staging vs. prod). Records, lookups, revocations and journals never cross
// a tenant boundary; the only shared pieces are the process, the fsync
// policy and — when replication is on — the hub's global offset counter.
//
// The registry is deliberately thin: it does not know about persistence or
// replication. A TenantFactory (supplied by the facade) builds each
// tenant's backing store — typically a Journaled wrapper over a WAL plus
// the replication hub — and the registry handles naming, lifecycle,
// routing, and the consistent multi-tenant cut replication snapshots need.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DefaultTenant is the canonical name of the namespace that exists in every
// registry and that pre-tenant deployments' data maps onto.
const DefaultTenant = "default"

// MaxTenantNameLen bounds tenant names (matched by wire.MaxTenantLen).
const MaxTenantNameLen = 64

// Errors returned by the tenant registry.
var (
	// ErrUnknownTenant reports an operation against a tenant the registry
	// does not host (never created, or dropped).
	ErrUnknownTenant = errors.New("store: unknown tenant")
	// ErrTenantExists reports a create for a name already hosted.
	ErrTenantExists = errors.New("store: tenant already exists")
	// ErrBadTenantName reports a syntactically invalid tenant name.
	ErrBadTenantName = errors.New("store: invalid tenant name")
)

// CanonicalTenant maps the empty name (the wire encoding of "no tenant
// given") to DefaultTenant and returns every other name unchanged.
func CanonicalTenant(name string) string {
	if name == "" {
		return DefaultTenant
	}
	return name
}

// ValidateTenantName rejects names that could not serve as registry keys
// and partition directory names: the canonical form must be 1 to
// MaxTenantNameLen characters, start with a letter or digit, and contain
// only letters, digits, '.', '_' and '-'. The empty string is valid (it is
// the default tenant).
func ValidateTenantName(name string) error {
	name = CanonicalTenant(name)
	if len(name) > MaxTenantNameLen {
		return fmt.Errorf("%w: %d characters (max %d)", ErrBadTenantName, len(name), MaxTenantNameLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		alnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if alnum || (i > 0 && (c == '.' || c == '_' || c == '-')) {
			continue
		}
		return fmt.Errorf("%w: %q", ErrBadTenantName, name)
	}
	return nil
}

// TenantView is one tenant's slice of a consistent multi-tenant cut (see
// Registry.View).
type TenantView struct {
	// Tenant is the canonical tenant name.
	Tenant string
	// Records is the tenant's full record set.
	Records []*Record
}

// TenantFactory builds the backing store for a named tenant: the in-memory
// strategy, optionally wrapped behind the journal seam (WAL, replication
// hub). The returned closer (may be nil) releases the tenant's resources —
// it is called when the tenant is dropped and when the registry resets.
type TenantFactory func(name string) (Store, func() error, error)

// Registry hosts one Store per tenant namespace. Lookups are read-locked
// and cheap; Create, Drop and Reset are rare administrative operations.
// Stores handed out by Tenant remain valid after a concurrent Drop — they
// are simply detached, with journaled stores fenced so a late mutation
// fails with ErrUnknownTenant instead of landing after the drop — so
// sessions never race the registry map.
type Registry struct {
	factory TenantFactory
	journal Journal            // ships tenant create/drop ops (nil = don't)
	purge   func(string) error // destroys a dropped tenant's durable state

	mu      sync.RWMutex
	tenants map[string]Store
	closers map[string]func() error
	gate    func(tenant, id string) error // write gate for journaled tenants
}

// NewTenantRegistry builds a registry and eagerly creates the default
// tenant through the factory.
func NewTenantRegistry(factory TenantFactory) (*Registry, error) {
	r := &Registry{
		factory: factory,
		tenants: make(map[string]Store),
		closers: make(map[string]func() error),
	}
	if _, err := r.Ensure(DefaultTenant); err != nil {
		return nil, err
	}
	return r, nil
}

// ShipAdminOps makes the registry append a tenant-create/-drop mutation to
// j whenever a tenant is created or dropped, so followers mirror the tenant
// set. Call before serving traffic.
func (r *Registry) ShipAdminOps(j Journal) { r.journal = j }

// OnDrop installs the hook that destroys a dropped tenant's durable state
// (its persistence partition), called after the tenant's store is closed.
// Call before serving traffic.
func (r *Registry) OnDrop(purge func(name string) error) { r.purge = purge }

// SetWriteGate installs a mutation gate on every journaled tenant, current
// and future (see Journaled.SetWriteGate). The cluster layer uses it as
// the partition-handoff barrier.
func (r *Registry) SetWriteGate(gate func(tenant, id string) error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gate = gate
	for _, s := range r.tenants {
		if j, ok := s.(*Journaled); ok {
			j.SetWriteGate(gate)
		}
	}
}

// Tenant returns the named tenant's store ("" selects the default tenant),
// or ErrUnknownTenant.
func (r *Registry) Tenant(name string) (Store, error) {
	name = CanonicalTenant(name)
	r.mu.RLock()
	s, ok := r.tenants[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return s, nil
}

// Default returns the default tenant's store.
func (r *Registry) Default() Store {
	s, _ := r.Tenant(DefaultTenant)
	return s
}

// Has reports whether the named tenant exists.
func (r *Registry) Has(name string) bool {
	_, err := r.Tenant(name)
	return err == nil
}

// Ensure returns the named tenant's store, creating the tenant if it does
// not exist yet. Unlike Create it does not ship an admin op — it is the
// path for boot-time loading of existing partitions and for follower-side
// application of replicated mutations.
func (r *Registry) Ensure(name string) (Store, error) {
	name = CanonicalTenant(name)
	if s, err := r.Tenant(name); err == nil {
		return s, nil
	}
	if err := ValidateTenantName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.tenants[name]; ok {
		return s, nil
	}
	return r.createLocked(name)
}

// createLocked builds and registers a tenant; the caller holds r.mu.
func (r *Registry) createLocked(name string) (Store, error) {
	s, closer, err := r.factory(name)
	if err != nil {
		return nil, fmt.Errorf("store: create tenant %q: %w", name, err)
	}
	if j, ok := s.(*Journaled); ok && r.gate != nil {
		j.SetWriteGate(r.gate)
	}
	r.tenants[name] = s
	if closer != nil {
		r.closers[name] = closer
	}
	return s, nil
}

// Create adds a new tenant namespace and, when an admin journal is bound,
// ships the creation to followers. It fails with ErrTenantExists for a name
// already hosted and ErrBadTenantName for an invalid one.
func (r *Registry) Create(name string) error {
	name = CanonicalTenant(name)
	if err := ValidateTenantName(name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[name]; ok {
		return fmt.Errorf("%w: %q", ErrTenantExists, name)
	}
	if _, err := r.createLocked(name); err != nil {
		return err
	}
	if r.journal != nil {
		if err := r.journal.Append(Mutation{Op: OpTenantCreate, Tenant: name}); err != nil {
			return fmt.Errorf("store: ship tenant create: %w", err)
		}
	}
	return nil
}

// Drop removes a tenant namespace and every record in it: the tenant
// disappears from routing, in-flight mutations are drained, the store's
// backing resources are closed, the drop is shipped to followers, and the
// tenant's durable state is destroyed via the OnDrop hook. The default
// tenant cannot be dropped. Drop is irreversible.
func (r *Registry) Drop(name string) error {
	name = CanonicalTenant(name)
	if name == DefaultTenant {
		return fmt.Errorf("%w: the default tenant cannot be dropped", ErrBadTenantName)
	}
	r.mu.Lock()
	s, ok := r.tenants[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	delete(r.tenants, name)
	closer := r.closers[name]
	delete(r.closers, name)
	r.mu.Unlock()
	// Drain in-flight mutations and fence the detached store: once the
	// tenant's mutation lock is held nothing of this tenant is still being
	// journalled, and marking it dropped makes any session that resolved
	// the store before the drop fail with ErrUnknownTenant instead of
	// journalling a mutation after the drop op — which would resurrect the
	// tenant on followers.
	if j, ok := s.(*Journaled); ok {
		j.mu.Lock()
		j.dropped = true
		defer j.mu.Unlock()
	}
	var errs []error
	if r.journal != nil {
		if err := r.journal.Append(Mutation{Op: OpTenantDrop, Tenant: name}); err != nil {
			errs = append(errs, fmt.Errorf("store: ship tenant drop: %w", err))
		}
	}
	if closer != nil {
		if err := closer(); err != nil {
			errs = append(errs, err)
		}
	}
	if r.purge != nil {
		if err := r.purge(name); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Names returns the hosted tenant names, sorted. It always includes
// DefaultTenant.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Enrolled returns the total record count across every tenant.
func (r *Registry) Enrolled() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, s := range r.tenants {
		n += s.Len()
	}
	return n
}

// Apply routes one replicated mutation to the right tenant — the follower's
// write path. Inserts materialise their tenant on demand (a follower that
// reconnected mid-history may see a tenant's first mutation before any
// create op); deletes against an unknown tenant fail, surfacing stream
// corruption. Tenant create/drop ops adjust the registry itself; a drop for
// an already-absent tenant is a no-op, since drops are idempotent by
// intent.
func (r *Registry) Apply(m Mutation) error {
	switch m.Op {
	case OpTenantCreate:
		_, err := r.Ensure(m.Tenant)
		return err
	case OpTenantDrop:
		if err := r.Drop(m.Tenant); err != nil && !errors.Is(err, ErrUnknownTenant) {
			return err
		}
		return nil
	case OpInsert:
		s, err := r.Ensure(m.Tenant)
		if err != nil {
			return err
		}
		return Apply(s, m)
	case OpDelete, OpReplace:
		// Both operate on an already-enrolled ID, so the tenant must already
		// exist on the follower; materialising it here would mask corruption.
		s, err := r.Tenant(m.Tenant)
		if err != nil {
			return err
		}
		return Apply(s, m)
	default:
		return fmt.Errorf("store: unknown mutation op %d", m.Op)
	}
}

// Reset drops every tenant — including the default tenant's records — and
// recreates an empty default: the follower's snapshot-bootstrap clear. The
// OnDrop purge hook is not invoked (a follower owns no durable state), and
// nothing is shipped.
func (r *Registry) Reset() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var errs []error
	for name, closer := range r.closers {
		if err := closer(); err != nil {
			errs = append(errs, fmt.Errorf("store: reset tenant %q: %w", name, err))
		}
	}
	r.tenants = make(map[string]Store)
	r.closers = make(map[string]func() error)
	if _, err := r.createLocked(DefaultTenant); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// View runs fn on a consistent cut of every tenant's record set: each
// journaled tenant's mutation lock is held (in sorted name order) while fn
// runs, so no mutation of any tenant is in flight — the multi-tenant
// counterpart of (*Journaled).View, used by the replication hub to pair a
// snapshot of all namespaces with one log offset. fn must not mutate any
// store or the registry (it would deadlock).
func (r *Registry) View(fn func(cut []TenantView)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	var unlock []*Journaled
	defer func() {
		for i := len(unlock) - 1; i >= 0; i-- {
			unlock[i].mu.Unlock()
		}
	}()
	cut := make([]TenantView, 0, len(names))
	for _, name := range names {
		s := r.tenants[name]
		if j, ok := s.(*Journaled); ok {
			j.mu.Lock()
			unlock = append(unlock, j)
		}
	}
	// All mutation locks are held: the record sets and the journal offset
	// are now one consistent multi-tenant state.
	for _, name := range names {
		cut = append(cut, TenantView{Tenant: name, Records: r.tenants[name].All()})
	}
	fn(cut)
}

// Close releases every tenant's backing resources (journals, files). The
// registry is not usable afterwards.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var errs []error
	for name, closer := range r.closers {
		if err := closer(); err != nil {
			errs = append(errs, fmt.Errorf("store: close tenant %q: %w", name, err))
		}
	}
	r.closers = make(map[string]func() error)
	return errors.Join(errs...)
}
