package transport

// Cluster-aware client routing (DESIGN.md §14). A clustered client caches
// the server's versioned cluster map and keeps one lazily-dialed connection
// per primary it talks to. Keyed sessions (enroll, verify, revoke,
// re-enroll) hash their key to a slot and go straight to the owning group's
// primary; a WrongPartition redirect carries the refusing node's newer map,
// which the client installs (strictly-newer-only, so a malicious or buggy
// redirect cannot loop it) and retries — convergence after a split is one
// redirect round. Identification has no key to route by, so it
// scatter-gathers across every group in parallel, first match wins; when a
// group cannot be reached and no other group matched, the client returns a
// typed PartialIdentifyError instead of a silent false reject.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"fuzzyid/internal/cluster"
	"fuzzyid/internal/numberline"
	"fuzzyid/internal/protocol"
)

// ErrMapNotAdvancing is wrapped into the error returned when a
// WrongPartition redirect carries a map that is not strictly newer than the
// client's cached one. Following such a redirect could loop forever (two
// nodes bouncing a key between them, or a malicious node replaying an old
// map), so the client surfaces it instead of retrying.
var ErrMapNotAdvancing = errors.New("transport: redirect does not advance the cluster map")

// maxClusterRedirects bounds how many WrongPartition redirects a keyed
// session follows. Each redirect must install a strictly newer map, so in a
// healthy cluster one hop suffices; the bound is a backstop against
// pathological map churn.
const maxClusterRedirects = 3

// clusterDialTimeout bounds dialing a cluster node when the client has no
// per-session timeout configured.
const clusterDialTimeout = 5 * time.Second

// PartialIdentifyError reports a scatter-gather identification that found
// no match but could not reach every partition: the identity may be
// enrolled on one of the failed groups, so the miss is unreliable.
type PartialIdentifyError struct {
	// Failed lists the primary address of each group whose read could not
	// be served by any member.
	Failed []string
	// Err is the first transport failure observed.
	Err error
}

// Error implements error.
func (e *PartialIdentifyError) Error() string {
	return fmt.Sprintf("transport: identify incomplete: %d partition(s) unreachable (%v): %v", len(e.Failed), e.Failed, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *PartialIdentifyError) Unwrap() error { return e.Err }

// IsPartialIdentify reports whether err is an identification verdict that
// is unreliable because one or more partitions were unreachable; if so it
// also returns the unreachable groups' primary addresses.
func IsPartialIdentify(err error) ([]string, bool) {
	var pe *PartialIdentifyError
	if errors.As(err, &pe) {
		return pe.Failed, true
	}
	return nil, false
}

// clusterRouter is the client's cluster-mode state: the cached map and one
// connection slot per node address.
type clusterRouter struct {
	mu    sync.Mutex
	m     *cluster.Map
	conns map[string]*nodeConn
}

// nodeConn is one lazily-dialed connection to a cluster node; its mutex
// serialises sessions on the connection.
type nodeConn struct {
	addr string
	mu   sync.Mutex
	conn net.Conn
}

// WithCluster puts the client in cluster-routing mode: the cluster map is
// fetched from the seed connection on first use, keyed sessions route to
// the owning partition's primary (following WrongPartition redirects), and
// identification scatter-gathers across all partitions. The seed connection
// (Dial's addr) can be any cluster node.
func WithCluster() ClientOption {
	return clientOptionFunc(func(c *Client) {
		c.cluster = &clusterRouter{conns: make(map[string]*nodeConn)}
	})
}

// ClusterMap returns the client's current view of the cluster map, fetching
// it from the seed connection if none is cached yet.
func (c *Client) ClusterMap() (*cluster.Map, error) {
	if c.cluster == nil {
		return nil, errors.New("transport: client is not in cluster mode")
	}
	return c.clusterMap()
}

func (c *Client) clusterMap() (*cluster.Map, error) {
	c.cluster.mu.Lock()
	m := c.cluster.m
	c.cluster.mu.Unlock()
	if m != nil {
		return m, nil
	}
	var fetched *cluster.Map
	err := c.primarySession(func(rw io.ReadWriter) error {
		var err error
		fetched, err = c.device.ClusterMap(rw)
		return err
	})
	if err != nil {
		return nil, err
	}
	c.installMap(fetched)
	return fetched, nil
}

// installMap caches m if it is strictly newer than the current view.
func (c *Client) installMap(m *cluster.Map) bool {
	c.cluster.mu.Lock()
	defer c.cluster.mu.Unlock()
	if c.cluster.m == nil || m.Version > c.cluster.m.Version {
		c.cluster.m = m
		return true
	}
	return false
}

// node returns the connection slot for addr, creating it if needed.
func (c *Client) node(addr string) *nodeConn {
	c.cluster.mu.Lock()
	defer c.cluster.mu.Unlock()
	nc, ok := c.cluster.conns[addr]
	if !ok {
		nc = &nodeConn{addr: addr}
		c.cluster.conns[addr] = nc
	}
	return nc
}

// nodeSession runs one protocol session on the connection to addr, dialing
// it if needed. A transport-level failure closes the connection so the next
// session redials; protocol outcomes (rejects, redirects, sheds, misses)
// leave it open.
func (c *Client) nodeSession(addr string, fn func(io.ReadWriter) error) error {
	nc := c.node(addr)
	nc.mu.Lock()
	defer nc.mu.Unlock()
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if nc.conn == nil {
		dialTO := c.timeout
		if dialTO <= 0 {
			dialTO = clusterDialTimeout
		}
		conn, err := net.DialTimeout("tcp", addr, dialTO)
		if err != nil {
			return fmt.Errorf("transport: dial cluster node %s: %w", addr, err)
		}
		nc.conn = conn
	}
	if c.timeout > 0 {
		if err := nc.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			nc.conn.Close()
			nc.conn = nil
			return fmt.Errorf("transport: set deadline: %w", err)
		}
	}
	err := fn(nc.conn)
	if err != nil && !isProtocolOutcome(err) {
		nc.conn.Close()
		nc.conn = nil
	}
	return err
}

// isProtocolOutcome reports whether err is a typed in-protocol verdict (the
// connection is still synchronised and reusable) as opposed to a
// transport-level failure.
func isProtocolOutcome(err error) bool {
	if protocol.IsRejected(err) || errors.Is(err, protocol.ErrNoMatch) {
		return true
	}
	if _, ok := protocol.IsOverloaded(err); ok {
		return true
	}
	if _, ok := protocol.IsUnknownTenant(err); ok {
		return true
	}
	if _, ok := protocol.IsNotPrimary(err); ok {
		return true
	}
	if _, ok := protocol.IsWrongPartition(err); ok {
		return true
	}
	return false
}

// keyedSession routes one keyed session by the client's tenant and id,
// retrying overload sheds per WithOverloadRetry.
func (c *Client) keyedSession(id string, fn func(io.ReadWriter) error) error {
	return c.retrying(func() error { return c.routeKeyed(id, fn) })
}

// routeKeyed runs fn against the primary owning id's slot, following
// WrongPartition redirects. Every followed redirect must install a strictly
// newer map; a redirect that does not advance the map is surfaced as
// ErrMapNotAdvancing rather than followed (it could only loop).
func (c *Client) routeKeyed(id string, fn func(io.ReadWriter) error) error {
	m, err := c.clusterMap()
	if err != nil {
		return err
	}
	slot := cluster.SlotOf(c.tenant, id)
	for hop := 0; ; hop++ {
		addr := m.PrimaryOf(slot)
		err := c.nodeSession(addr, fn)
		newMap, wrong := protocol.IsWrongPartition(err)
		if !wrong {
			return err
		}
		if hop >= maxClusterRedirects {
			return fmt.Errorf("transport: key %q still misrouted after %d redirects: %w", id, hop, ErrMapNotAdvancing)
		}
		if !c.installMap(newMap) {
			return fmt.Errorf("transport: node %s redirected with map version %d: %w", addr, newMap.Version, ErrMapNotAdvancing)
		}
		m = newMap
	}
}

// groupRead serves one read session on group g, preferring replicas
// (rotated round-robin) and falling back to the primary. A member that
// fails at the transport level — or answers unknown-tenant, which a lagging
// follower legitimately can — is skipped for the next member; the last
// error is returned when every member failed.
func (c *Client) groupRead(g cluster.Group, fn func(io.ReadWriter) error) error {
	addrs := make([]string, 0, len(g.Replicas)+1)
	if n := len(g.Replicas); n > 0 {
		start := int((c.rr.Add(1) - 1) % uint32(n))
		for i := 0; i < n; i++ {
			addrs = append(addrs, g.Replicas[(start+i)%n])
		}
	}
	addrs = append(addrs, g.Primary)
	var lastErr error
	for i, addr := range addrs {
		err := c.nodeSession(addr, fn)
		if err == nil {
			return nil
		}
		lastErr = err
		if errors.Is(err, ErrClosed) {
			return err
		}
		if _, unknown := protocol.IsUnknownTenant(err); unknown && i < len(addrs)-1 {
			continue // a lagging follower; the primary is authoritative
		}
		if isProtocolOutcome(err) {
			return err
		}
	}
	return lastErr
}

// scatterResult carries one group's answer back to the gather loop.
type scatterResult struct {
	ids  []string
	err  error
	addr string // the group's primary, naming the partition in errors
}

// scatter fans fn out to every group in parallel and streams the results.
// The channel is buffered to the group count, so a gather loop that returns
// early (first match wins) never blocks the straggler goroutines.
func (c *Client) scatter(m *cluster.Map, fn func(io.ReadWriter) ([]string, error)) <-chan scatterResult {
	ch := make(chan scatterResult, len(m.Groups))
	for _, g := range m.Groups {
		go func(g cluster.Group) {
			var ids []string
			err := c.groupRead(g, func(rw io.ReadWriter) error {
				var err error
				ids, err = fn(rw)
				return err
			})
			ch <- scatterResult{ids: ids, err: err, addr: g.Primary}
		}(g)
	}
	return ch
}

// refreshMap refetches the cluster map from the seed connection and reports
// whether it advanced past prev. A scatter miss consults it before trusting
// the verdict: a split that completed after the map was cached would
// otherwise turn the moved identities into silent false rejects.
func (c *Client) refreshMap(prev *cluster.Map) (*cluster.Map, bool) {
	var fetched *cluster.Map
	err := c.primarySession(func(rw io.ReadWriter) error {
		var err error
		fetched, err = c.device.ClusterMap(rw)
		return err
	})
	if err != nil || fetched.Version <= prev.Version {
		return prev, false
	}
	c.installMap(fetched)
	return fetched, true
}

// scatterIdentify runs a single-probe identification against every
// partition: the first match wins; a clean miss everywhere returns the
// protocol's typed miss; a miss with unreachable partitions returns
// PartialIdentifyError, because the identity may live on a failed group. A
// miss re-checks the map version once — a concurrent split may have moved
// the identity to a partition the cached map does not know.
func (c *Client) scatterIdentify(run func(io.ReadWriter) (string, error)) (string, error) {
	m, err := c.clusterMap()
	if err != nil {
		return "", err
	}
	for round := 0; ; round++ {
		ch := c.scatter(m, func(rw io.ReadWriter) ([]string, error) {
			id, err := run(rw)
			return []string{id}, err
		})
		var (
			missErr error
			failed  []string
			failErr error
		)
		for range m.Groups {
			r := <-ch
			switch {
			case r.err == nil && r.ids[0] != "":
				return r.ids[0], nil
			case r.err == nil || protocol.IsRejected(r.err) || errors.Is(r.err, protocol.ErrNoMatch):
				if missErr == nil {
					missErr = r.err
				}
			default:
				failed = append(failed, r.addr)
				if failErr == nil {
					failErr = r.err
				}
			}
		}
		if round == 0 {
			if nm, newer := c.refreshMap(m); newer {
				m = nm
				continue
			}
		}
		if len(failed) > 0 {
			return "", &PartialIdentifyError{Failed: failed, Err: failErr}
		}
		if missErr != nil {
			return "", missErr
		}
		return "", protocol.ErrNoMatch
	}
}

// scatterIdentifyBatch runs a batched identification against every
// partition and merges the verdicts position-wise (IDs are unique across
// partitions, so at most one group matches each reading). When a partition
// was unreachable and at least one reading stayed unmatched, the merged
// result rides along a PartialIdentifyError — those misses are unreliable.
func (c *Client) scatterIdentifyBatch(readings []numberline.Vector) ([]string, error) {
	m, err := c.clusterMap()
	if err != nil {
		return nil, err
	}
	for round := 0; ; round++ {
		ch := c.scatter(m, func(rw io.ReadWriter) ([]string, error) {
			return c.device.IdentifyBatch(rw, readings)
		})
		merged := make([]string, len(readings))
		var (
			failed  []string
			failErr error
		)
		for range m.Groups {
			r := <-ch
			if r.err != nil {
				failed = append(failed, r.addr)
				if failErr == nil {
					failErr = r.err
				}
				continue
			}
			for i, id := range r.ids {
				if i < len(merged) && merged[i] == "" {
					merged[i] = id
				}
			}
		}
		unmatched := false
		for _, id := range merged {
			if id == "" {
				unmatched = true
				break
			}
		}
		// Unmatched readings may live on a partition the cached map does not
		// know yet; re-check the map version once before trusting them.
		if unmatched && round == 0 {
			if nm, newer := c.refreshMap(m); newer {
				m = nm
				continue
			}
		}
		if unmatched && len(failed) > 0 {
			return merged, &PartialIdentifyError{Failed: failed, Err: failErr}
		}
		return merged, nil
	}
}

// fanoutAdmin runs one admin session against every partition primary and
// joins the failures, so tenant administration converges cluster-wide.
func (c *Client) fanoutAdmin(fn func(io.ReadWriter) error) error {
	m, err := c.clusterMap()
	if err != nil {
		return err
	}
	var errs []error
	for _, g := range m.Groups {
		if err := c.nodeSession(g.Primary, fn); err != nil {
			errs = append(errs, fmt.Errorf("partition %s: %w", g.Primary, err))
		}
	}
	return errors.Join(errs...)
}

// closeClusterConns tears down every per-node connection; called from
// Close after the client is marked closed.
func (c *Client) closeClusterConns() {
	if c.cluster == nil {
		return
	}
	c.cluster.mu.Lock()
	conns := make([]*nodeConn, 0, len(c.cluster.conns))
	for _, nc := range c.cluster.conns {
		conns = append(conns, nc)
	}
	c.cluster.mu.Unlock()
	for _, nc := range conns {
		nc.mu.Lock()
		if nc.conn != nil {
			nc.conn.Close()
			nc.conn = nil
		}
		nc.mu.Unlock()
	}
}

// PartitionHandoff runs a partition split/move admin session on the seed
// connection, which must be the primary currently owning the slots. It
// returns the cluster map version in force after the handoff and refreshes
// the client's cached map.
func (c *Client) PartitionHandoff(action byte, slots []uint32, target string, targetReplicas []string) (uint64, error) {
	var version uint64
	err := c.primarySession(func(rw io.ReadWriter) error {
		var err error
		version, err = c.device.PartitionHandoff(rw, action, slots, target, targetReplicas)
		return err
	})
	if err == nil && c.cluster != nil {
		c.cluster.mu.Lock()
		c.cluster.m = nil // force a refetch: the map changed under us
		c.cluster.mu.Unlock()
	}
	return version, err
}
