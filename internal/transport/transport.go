// Package transport runs the §V protocol engines over real connections: a
// concurrent TCP authentication server and a client wrapper for the
// biometric device, plus an in-memory pair for tests and benchmarks. One
// connection can carry many sequential protocol sessions (enroll, verify,
// identify); framing is provided by internal/wire.
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"fuzzyid/internal/numberline"
	"fuzzyid/internal/protocol"
	"fuzzyid/internal/telemetry"
)

// Errors returned by the transport layer.
var (
	ErrClosed = errors.New("transport: closed")
)

// DefaultTimeout bounds a single protocol session on the client side.
const DefaultTimeout = 30 * time.Second

// Server accepts connections and serves protocol sessions concurrently.
type Server struct {
	proto       *protocol.Server
	ln          net.Listener
	idleTimeout time.Duration
	maxConns    int
	closer      io.Closer
	m           connMetrics

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// connMetrics are the transport-layer instruments: connection lifecycle
// counts and raw bytes moved. The zero value (nil instruments) is the
// uninstrumented state.
type connMetrics struct {
	accepted *telemetry.Counter // connections admitted into serving
	rejected *telemetry.Counter // connections refused at the maxConns cap
	active   *telemetry.Gauge   // connections currently being served
	bytesIn  *telemetry.Counter // bytes read from peers
	bytesOut *telemetry.Counter // bytes written to peers
}

func (m *connMetrics) bind(reg *telemetry.Registry) {
	m.accepted = reg.Counter("transport.conns.accepted")
	m.rejected = reg.Counter("transport.conns.rejected")
	m.active = reg.Gauge("transport.conns.active")
	m.bytesIn = reg.Counter("transport.bytes.in")
	m.bytesOut = reg.Counter("transport.bytes.out")
}

// measuredRW counts the bytes a session moves over the connection. It wraps
// only the stream handed to the protocol engine; deadline control stays on
// the underlying net.Conn.
type measuredRW struct {
	rw      io.ReadWriter
	in, out *telemetry.Counter
}

func (c *measuredRW) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	if n > 0 {
		c.in.Add(uint64(n))
	}
	return n, err
}

func (c *measuredRW) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	if n > 0 {
		c.out.Add(uint64(n))
	}
	return n, err
}

// ServerOption configures a Server.
type ServerOption interface {
	applyServer(*Server)
}

type serverOptionFunc func(*Server)

func (f serverOptionFunc) applyServer(s *Server) { f(s) }

// WithIdleTimeout sets the per-session read deadline on server connections
// (default: none).
func WithIdleTimeout(d time.Duration) ServerOption {
	return serverOptionFunc(func(s *Server) { s.idleTimeout = d })
}

// WithMaxConns bounds the number of concurrently served connections, so a
// flood of clients cannot exhaust goroutines or file descriptors: a
// connection past the cap is closed immediately at accept time (the client
// sees EOF) instead of being queued behind the cap. n <= 0 means unbounded
// (the default).
func WithMaxConns(n int) ServerOption {
	return serverOptionFunc(func(s *Server) { s.maxConns = n })
}

// WithCloser attaches a resource to the server's shutdown path: Close first
// drains the live sessions, then closes c. The persistence layer uses it so
// a graceful shutdown flushes the enrollment database after the last
// session finished mutating it.
func WithCloser(c io.Closer) ServerOption {
	return serverOptionFunc(func(s *Server) { s.closer = c })
}

// WithTelemetry binds the server's transport-layer instruments (connections
// accepted/active/rejected, bytes in/out) to reg and instruments the
// protocol engine against the same registry, so one snapshot covers both
// layers. A nil reg leaves the server uninstrumented.
func WithTelemetry(reg *telemetry.Registry) ServerOption {
	return serverOptionFunc(func(s *Server) {
		s.m.bind(reg)
		s.proto.Instrument(reg)
	})
}

// Listen starts a TCP server for proto on addr (e.g. "127.0.0.1:0").
func Listen(addr string, proto *protocol.Server, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s := &Server{proto: proto, ln: ln, conns: make(map[net.Conn]struct{})}
	for _, o := range opts {
		o.applyServer(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, closes every live connection and waits for the
// session goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	if s.closer != nil {
		if cerr := s.closer.Close(); cerr != nil {
			return errors.Join(err, cerr)
		}
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		switch s.track(conn) {
		case trackClosed:
			conn.Close()
			return
		case trackFull:
			s.m.rejected.Inc()
			conn.Close() // past the connection cap: refuse, keep accepting
			continue
		}
		s.m.accepted.Inc()
		s.m.active.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.m.active.Dec()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

// track outcomes.
type trackResult int

const (
	trackOK     trackResult = iota
	trackClosed             // server shut down
	trackFull               // connection cap reached
)

func (s *Server) track(conn net.Conn) trackResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return trackClosed
	}
	if s.maxConns > 0 && len(s.conns) >= s.maxConns {
		return trackFull
	}
	s.conns[conn] = struct{}{}
	return trackOK
}

func (s *Server) untrack(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serveConn runs protocol sessions until the peer disconnects or misbehaves.
func (s *Server) serveConn(conn net.Conn) {
	var rw io.ReadWriter = conn
	if s.m.bytesIn != nil || s.m.bytesOut != nil {
		rw = &measuredRW{rw: conn, in: s.m.bytesIn, out: s.m.bytesOut}
	}
	for {
		if s.idleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout)); err != nil {
				return
			}
		}
		if err := s.proto.HandleSession(rw); err != nil {
			return // EOF, timeout or protocol violation: drop the connection
		}
	}
}

// Client drives the device engine over one connection. Methods are
// serialised: a connection carries one session at a time.
type Client struct {
	device  *protocol.Device
	timeout time.Duration

	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// ClientOption configures a Client.
type ClientOption interface {
	applyClient(*Client)
}

type clientOptionFunc func(*Client)

func (f clientOptionFunc) applyClient(c *Client) { f(c) }

// WithTimeout bounds each protocol session (default DefaultTimeout;
// 0 disables deadlines, required for net.Pipe which does not support them).
func WithTimeout(d time.Duration) ClientOption {
	return clientOptionFunc(func(c *Client) { c.timeout = d })
}

// Dial connects to a server at addr.
func Dial(addr string, device *protocol.Device, opts ...ClientOption) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	return NewClient(conn, device, opts...), nil
}

// NewClient wraps an existing connection (TCP or net.Pipe).
func NewClient(conn net.Conn, device *protocol.Device, opts ...ClientOption) *Client {
	c := &Client{device: device, conn: conn, timeout: DefaultTimeout}
	for _, o := range opts {
		o.applyClient(c)
	}
	return c
}

// Close closes the underlying connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.closed = true
	return c.conn.Close()
}

// Enroll runs UserEnro for (id, bio).
func (c *Client) Enroll(id string, bio numberline.Vector) error {
	return c.withSession(func(rw io.ReadWriter) error {
		return c.device.Enroll(rw, id, bio)
	})
}

// Verify runs verification mode for the claimed id.
func (c *Client) Verify(id string, bio numberline.Vector) error {
	return c.withSession(func(rw io.ReadWriter) error {
		return c.device.Verify(rw, id, bio)
	})
}

// Identify runs the proposed identification protocol and returns the
// established identity.
func (c *Client) Identify(bio numberline.Vector) (string, error) {
	var id string
	err := c.withSession(func(rw io.ReadWriter) error {
		var err error
		id, err = c.device.Identify(rw, bio)
		return err
	})
	return id, err
}

// Revoke removes the enrollment for id after a successful biometric
// challenge-response.
func (c *Client) Revoke(id string, bio numberline.Vector) error {
	return c.withSession(func(rw io.ReadWriter) error {
		return c.device.Revoke(rw, id, bio)
	})
}

// IdentifyBatch runs the batched identification protocol for several
// readings in one session. The result is aligned with readings; "" marks
// readings that were not identified.
func (c *Client) IdentifyBatch(readings []numberline.Vector) ([]string, error) {
	var ids []string
	err := c.withSession(func(rw io.ReadWriter) error {
		var err error
		ids, err = c.device.IdentifyBatch(rw, readings)
		return err
	})
	return ids, err
}

// Stats asks the server for its telemetry snapshot over the native protocol
// and returns the raw JSON document. Servers without telemetry reject the
// request (protocol.IsRejected on the error).
func (c *Client) Stats() ([]byte, error) {
	var buf []byte
	err := c.withSession(func(rw io.ReadWriter) error {
		var err error
		buf, err = c.device.Stats(rw)
		return err
	})
	return buf, err
}

// IdentifyNormal runs the O(N) normal-approach identification.
func (c *Client) IdentifyNormal(bio numberline.Vector) (string, error) {
	var id string
	err := c.withSession(func(rw io.ReadWriter) error {
		var err error
		id, err = c.device.IdentifyNormal(rw, bio)
		return err
	})
	return id, err
}

func (c *Client) withSession(fn func(io.ReadWriter) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return fmt.Errorf("transport: set deadline: %w", err)
		}
	}
	return fn(c.conn)
}

// LocalPair wires a client directly to a protocol server through an
// in-memory pipe (no TCP stack). The returned stop function tears both ends
// down. Benchmarks use it to measure protocol cost without network noise.
func LocalPair(proto *protocol.Server, device *protocol.Device) (*Client, func()) {
	devEnd, srvEnd := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if err := proto.HandleSession(srvEnd); err != nil {
				return
			}
		}
	}()
	client := NewClient(devEnd, device, WithTimeout(0)) // net.Pipe: no deadlines needed
	stop := func() {
		client.Close()
		srvEnd.Close()
		<-done
	}
	return client, stop
}
