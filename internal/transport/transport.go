// Package transport runs the §V protocol engines over real connections: a
// concurrent TCP authentication server and a client wrapper for the
// biometric device, plus an in-memory pair for tests and benchmarks. One
// connection can carry many sequential protocol sessions (enroll, verify,
// identify); framing is provided by internal/wire.
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fuzzyid/internal/numberline"
	"fuzzyid/internal/protocol"
	"fuzzyid/internal/qos"
	"fuzzyid/internal/telemetry"
)

// Errors returned by the transport layer.
var (
	ErrClosed = errors.New("transport: closed")
)

// DefaultTimeout bounds a single protocol session on the client side.
const DefaultTimeout = 30 * time.Second

// Overload retry backoff bounds; see WithOverloadRetry.
const (
	// MinOverloadBackoff floors the first retry delay when the server's
	// retry-after hint is smaller.
	MinOverloadBackoff = 5 * time.Millisecond
	// MaxOverloadBackoff caps the exponential backoff between retries.
	MaxOverloadBackoff = time.Second
)

// Server accepts connections and serves protocol sessions concurrently.
type Server struct {
	proto       *protocol.Server
	ln          net.Listener
	idleTimeout time.Duration
	maxConns    int
	closer      io.Closer
	m           connMetrics

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// connMetrics are the transport-layer instruments: connection lifecycle
// counts and raw bytes moved. The zero value (nil instruments) is the
// uninstrumented state.
type connMetrics struct {
	accepted *telemetry.Counter // connections admitted into serving
	rejected *telemetry.Counter // connections refused at the maxConns cap
	active   *telemetry.Gauge   // connections currently being served
	bytesIn  *telemetry.Counter // bytes read from peers
	bytesOut *telemetry.Counter // bytes written to peers
}

func (m *connMetrics) bind(reg *telemetry.Registry) {
	m.accepted = reg.Counter("transport.conns.accepted")
	m.rejected = reg.Counter("transport.conns.rejected")
	m.active = reg.Gauge("transport.conns.active")
	m.bytesIn = reg.Counter("transport.bytes.in")
	m.bytesOut = reg.Counter("transport.bytes.out")
}

// measuredRW counts the bytes a session moves over the connection. It wraps
// only the stream handed to the protocol engine; deadline control stays on
// the underlying net.Conn.
type measuredRW struct {
	rw      io.ReadWriter
	in, out *telemetry.Counter
}

func (c *measuredRW) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	if n > 0 {
		c.in.Add(uint64(n))
	}
	return n, err
}

func (c *measuredRW) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	if n > 0 {
		c.out.Add(uint64(n))
	}
	return n, err
}

// SetReadDeadline forwards to the wrapped connection, so life-of-connection
// sessions (replication subscriptions) can clear the per-session idle
// deadline the accept loop armed.
func (c *measuredRW) SetReadDeadline(t time.Time) error {
	if d, ok := c.rw.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}

// SetWriteDeadline forwards to the wrapped connection, so the replication
// hub can bound its sends against a stalled follower.
func (c *measuredRW) SetWriteDeadline(t time.Time) error {
	if d, ok := c.rw.(interface{ SetWriteDeadline(time.Time) error }); ok {
		return d.SetWriteDeadline(t)
	}
	return nil
}

// ServerOption configures a Server.
type ServerOption interface {
	applyServer(*Server)
}

type serverOptionFunc func(*Server)

func (f serverOptionFunc) applyServer(s *Server) { f(s) }

// WithIdleTimeout sets the per-session read deadline on server connections
// (default: none).
func WithIdleTimeout(d time.Duration) ServerOption {
	return serverOptionFunc(func(s *Server) { s.idleTimeout = d })
}

// WithMaxConns bounds the number of concurrently served connections, so a
// flood of clients cannot exhaust goroutines or file descriptors: a
// connection past the cap is closed immediately at accept time (the client
// sees EOF) instead of being queued behind the cap. n <= 0 means unbounded
// (the default).
func WithMaxConns(n int) ServerOption {
	return serverOptionFunc(func(s *Server) { s.maxConns = n })
}

// WithCloser attaches a resource to the server's shutdown path: Close first
// drains the live sessions, then closes c. The persistence layer uses it so
// a graceful shutdown flushes the enrollment database after the last
// session finished mutating it.
func WithCloser(c io.Closer) ServerOption {
	return serverOptionFunc(func(s *Server) { s.closer = c })
}

// WithTelemetry binds the server's transport-layer instruments (connections
// accepted/active/rejected, bytes in/out) to reg and instruments the
// protocol engine against the same registry, so one snapshot covers both
// layers. A nil reg leaves the server uninstrumented.
func WithTelemetry(reg *telemetry.Registry) ServerOption {
	return serverOptionFunc(func(s *Server) {
		s.m.bind(reg)
		s.proto.Instrument(reg)
	})
}

// Listen starts a TCP server for proto on addr (e.g. "127.0.0.1:0").
func Listen(addr string, proto *protocol.Server, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s := &Server{proto: proto, ln: ln, conns: make(map[net.Conn]struct{})}
	for _, o := range opts {
		o.applyServer(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, closes every live connection and waits for the
// session goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	if s.closer != nil {
		if cerr := s.closer.Close(); cerr != nil {
			return errors.Join(err, cerr)
		}
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		switch s.track(conn) {
		case trackClosed:
			conn.Close()
			return
		case trackFull:
			s.m.rejected.Inc()
			conn.Close() // past the connection cap: refuse, keep accepting
			continue
		}
		s.m.accepted.Inc()
		s.m.active.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.m.active.Dec()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

// track outcomes.
type trackResult int

const (
	trackOK     trackResult = iota
	trackClosed             // server shut down
	trackFull               // connection cap reached
)

func (s *Server) track(conn net.Conn) trackResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return trackClosed
	}
	if s.maxConns > 0 && len(s.conns) >= s.maxConns {
		return trackFull
	}
	s.conns[conn] = struct{}{}
	return trackOK
}

func (s *Server) untrack(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serveConn runs protocol sessions until the peer disconnects or misbehaves.
func (s *Server) serveConn(conn net.Conn) {
	var rw io.ReadWriter = conn
	if s.m.bytesIn != nil || s.m.bytesOut != nil {
		rw = &measuredRW{rw: conn, in: s.m.bytesIn, out: s.m.bytesOut}
	}
	for {
		if s.idleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout)); err != nil {
				return
			}
		}
		if err := s.proto.HandleSession(rw); err != nil {
			return // EOF, timeout or protocol violation: drop the connection
		}
	}
}

// Replica fan-out defaults; see WithReplicas.
const (
	// DefaultMaxReplicaLag is the staleness bound above which a replica is
	// skipped by the read fan-out.
	DefaultMaxReplicaLag = 1024
	// DefaultReplicaProbe is how often a replica's lag is re-checked.
	DefaultReplicaProbe = time.Second
	// DefaultReplicaCooldown is how long a failed replica is benched
	// before the fan-out retries it.
	DefaultReplicaCooldown = time.Second
)

// Client drives the device engine over one connection to the primary and,
// when configured with WithReplicas, fans read sessions (identify, verify,
// batch, normal-approach) out across follower connections round-robin.
// Mutating sessions (enroll, revoke) and stats stay pinned to the primary.
// Methods are serialised per connection: each connection carries one
// session at a time.
type Client struct {
	device  *protocol.Device
	timeout time.Duration
	tenant  string // namespace every session addresses; "" = default
	retries int    // extra attempts after an Overloaded shed; see WithOverloadRetry

	// Read fan-out state (empty without WithReplicas).
	replicas []*replicaConn
	rr       atomic.Uint32
	maxLag   uint64
	probeIvl time.Duration
	cooldown time.Duration
	reg      *telemetry.Registry
	m        clientMetrics

	// cluster, when non-nil, holds the partition-routing state installed by
	// WithCluster (see cluster.go).
	cluster *clusterRouter

	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// clientMetrics are the fan-out instruments. The zero value (nil
// instruments) is the uninstrumented state.
type clientMetrics struct {
	healthy   *telemetry.Gauge   // replicas currently considered usable
	failovers *telemetry.Counter // read sessions that fell back past a replica
}

// replicaConn is one follower connection of the read fan-out. Its mutex
// serialises sessions on the connection; health bookkeeping rides under the
// same lock, except downUntil, which is atomic so the healthy-count gauge
// can be recomputed across all replicas without taking their locks.
type replicaConn struct {
	addr string

	// downUntil is the bench deadline in Unix nanoseconds (atomic; 0 =
	// in rotation).
	downUntil atomic.Int64

	mu        sync.Mutex
	conn      net.Conn // nil until dialed (and after a failure)
	lastProbe time.Time
	lag       uint64
	lagGauge  *telemetry.Gauge // client.replica.<i>.lag
	upGauge   *telemetry.Gauge // client.replica.<i>.healthy
}

// benched reports whether the replica is out of rotation at time now.
func (rc *replicaConn) benched(now time.Time) bool {
	return now.UnixNano() < rc.downUntil.Load()
}

// ClientOption configures a Client.
type ClientOption interface {
	applyClient(*Client)
}

type clientOptionFunc func(*Client)

func (f clientOptionFunc) applyClient(c *Client) { f(c) }

// WithTimeout bounds each protocol session (default DefaultTimeout;
// 0 disables deadlines, required for net.Pipe which does not support them).
func WithTimeout(d time.Duration) ClientOption {
	return clientOptionFunc(func(c *Client) { c.timeout = d })
}

// WithTenant binds every protocol session of the client to the named tenant
// namespace ("" selects the default tenant). The namespace must exist on
// the server, or operations fail with a typed unknown-tenant error (see
// protocol.IsUnknownTenant). Tenant administration sessions are unaffected.
func WithTenant(name string) ClientOption {
	return clientOptionFunc(func(c *Client) { c.tenant = name })
}

// WithOverloadRetry makes the client retry a session shed by the server's
// admission controller (protocol.IsOverloaded) up to n extra times, sleeping
// between attempts: the first delay is the server's retry-after hint floored
// at MinOverloadBackoff, then doubled per attempt and capped at
// MaxOverloadBackoff. n <= 0 (the default) surfaces the typed overload error
// to the caller on the first shed. Only overload sheds are retried —
// rejections, no-match outcomes and transport failures are never masked.
func WithOverloadRetry(n int) ClientOption {
	return clientOptionFunc(func(c *Client) { c.retries = n })
}

// WithReplicas gives the client follower addresses to fan read sessions out
// to: identification and verification rotate round-robin across the
// replicas, while enrollments, revocations and stats stay pinned to the
// primary connection. A replica is skipped while its replication lag
// exceeds the WithMaxReplicaLag bound (checked with a cheap status probe
// every DefaultReplicaProbe) and benched for DefaultReplicaCooldown after a
// connection failure; a read that finds no usable replica falls back to the
// primary, so correctness never depends on replica availability.
func WithReplicas(addrs ...string) ClientOption {
	return clientOptionFunc(func(c *Client) {
		for _, addr := range addrs {
			c.replicas = append(c.replicas, &replicaConn{addr: addr})
		}
	})
}

// WithMaxReplicaLag sets the staleness bound (in mutations behind the
// primary) above which a replica is skipped by the read fan-out (default
// DefaultMaxReplicaLag; 0 disables the lag check entirely).
func WithMaxReplicaLag(n uint64) ClientOption {
	return clientOptionFunc(func(c *Client) { c.maxLag = n })
}

// WithReplicaProbe sets how often each replica's status is re-probed for
// the lag check (default DefaultReplicaProbe).
func WithReplicaProbe(d time.Duration) ClientOption {
	return clientOptionFunc(func(c *Client) { c.probeIvl = d })
}

// WithClientTelemetry binds the client's fan-out instruments — per-replica
// lag and health gauges plus a failover counter — to reg; nil leaves the
// client uninstrumented. Binding happens after all options are applied, so
// the order of WithReplicas and WithClientTelemetry does not matter.
func WithClientTelemetry(reg *telemetry.Registry) ClientOption {
	return clientOptionFunc(func(c *Client) { c.reg = reg })
}

// Dial connects to a server at addr.
func Dial(addr string, device *protocol.Device, opts ...ClientOption) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	return NewClient(conn, device, opts...), nil
}

// NewClient wraps an existing connection (TCP or net.Pipe).
func NewClient(conn net.Conn, device *protocol.Device, opts ...ClientOption) *Client {
	c := &Client{
		device: device, conn: conn, timeout: DefaultTimeout,
		maxLag: DefaultMaxReplicaLag, probeIvl: DefaultReplicaProbe,
		cooldown: DefaultReplicaCooldown,
	}
	for _, o := range opts {
		o.applyClient(c)
	}
	if c.tenant != "" {
		c.device = c.device.ForTenant(c.tenant)
	}
	if c.reg != nil {
		c.m.healthy = c.reg.Gauge("client.replicas.healthy")
		c.m.failovers = c.reg.Counter("client.replicas.failovers")
		for i, rc := range c.replicas {
			rc.lagGauge = c.reg.Gauge(fmt.Sprintf("client.replica.%d.lag", i))
			rc.upGauge = c.reg.Gauge(fmt.Sprintf("client.replica.%d.healthy", i))
		}
	}
	c.m.healthy.Set(int64(len(c.replicas)))
	return c
}

// Close closes the primary connection and every replica connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	conn := c.conn
	// Replica locks are taken after c.mu is released: tryReplica holds
	// rc.mu while checking c.closed, so holding both here would deadlock.
	c.mu.Unlock()
	for _, rc := range c.replicas {
		rc.mu.Lock()
		if rc.conn != nil {
			rc.conn.Close()
			rc.conn = nil
		}
		rc.mu.Unlock()
	}
	c.closeClusterConns()
	return conn.Close()
}

// Enroll runs UserEnro for (id, bio). In cluster mode the session routes to
// the primary owning id's slot.
func (c *Client) Enroll(id string, bio numberline.Vector) error {
	fn := func(rw io.ReadWriter) error {
		return c.device.Enroll(rw, id, bio)
	}
	if c.cluster != nil {
		return c.keyedSession(id, fn)
	}
	return c.withSession(fn)
}

// Verify runs verification mode for the claimed id. With WithReplicas the
// session may be served by a follower (verification only reads the record);
// in cluster mode it routes to the partition owning id's slot.
func (c *Client) Verify(id string, bio numberline.Vector) error {
	fn := func(rw io.ReadWriter) error {
		return c.device.Verify(rw, id, bio)
	}
	if c.cluster != nil {
		return c.keyedSession(id, fn)
	}
	return c.readSession(fn)
}

// Identify runs the proposed identification protocol and returns the
// established identity. With WithReplicas the lookup fans out round-robin
// across healthy followers; a follower may serve a stale view bounded by
// WithMaxReplicaLag. In cluster mode the probe scatter-gathers across every
// partition — first match wins; a miss with unreachable partitions is a
// typed PartialIdentifyError, never a silent false reject.
func (c *Client) Identify(bio numberline.Vector) (string, error) {
	if c.cluster != nil {
		var id string
		err := c.retrying(func() error {
			var err error
			id, err = c.scatterIdentify(func(rw io.ReadWriter) (string, error) {
				return c.device.Identify(rw, bio)
			})
			return err
		})
		return id, err
	}
	var id string
	err := c.readSession(func(rw io.ReadWriter) error {
		var err error
		id, err = c.device.Identify(rw, bio)
		return err
	})
	return id, err
}

// Revoke removes the enrollment for id after a successful biometric
// challenge-response. In cluster mode the session routes to the primary
// owning id's slot.
func (c *Client) Revoke(id string, bio numberline.Vector) error {
	fn := func(rw io.ReadWriter) error {
		return c.device.Revoke(rw, id, bio)
	}
	if c.cluster != nil {
		return c.keyedSession(id, fn)
	}
	return c.withSession(fn)
}

// ReEnroll atomically replaces id's enrolled template with fresh helper
// data generated from newBio, after proving possession of the currently
// enrolled biometric (oldBio). A mutation, so it is always served by the
// owning primary.
func (c *Client) ReEnroll(id string, oldBio, newBio numberline.Vector) error {
	fn := func(rw io.ReadWriter) error {
		return c.device.ReEnroll(rw, id, oldBio, newBio)
	}
	if c.cluster != nil {
		return c.keyedSession(id, fn)
	}
	return c.withSession(fn)
}

// IdentifyBatch runs the batched identification protocol for several
// readings in one session. The result is aligned with readings; "" marks
// readings that were not identified. In cluster mode every partition runs
// the batch and the verdicts are merged position-wise.
func (c *Client) IdentifyBatch(readings []numberline.Vector) ([]string, error) {
	if c.cluster != nil {
		var ids []string
		err := c.retrying(func() error {
			var err error
			ids, err = c.scatterIdentifyBatch(readings)
			return err
		})
		return ids, err
	}
	var ids []string
	err := c.readSession(func(rw io.ReadWriter) error {
		var err error
		ids, err = c.device.IdentifyBatch(rw, readings)
		return err
	})
	return ids, err
}

// Stats asks the server for its telemetry snapshot over the native protocol
// and returns the raw JSON document. Servers without telemetry reject the
// request (protocol.IsRejected on the error).
func (c *Client) Stats() ([]byte, error) {
	var buf []byte
	err := c.withSession(func(rw io.ReadWriter) error {
		var err error
		buf, err = c.device.Stats(rw)
		return err
	})
	return buf, err
}

// Tenants asks the server for the hosted tenant namespace names. Pinned to
// the primary connection.
func (c *Client) Tenants() ([]string, error) {
	var names []string
	err := c.withSession(func(rw io.ReadWriter) error {
		var err error
		names, err = c.device.Tenants(rw)
		return err
	})
	return names, err
}

// CreateTenant creates a new tenant namespace on the server. Pinned to the
// primary connection (replicas redirect with a not-primary error); in
// cluster mode it fans out to every partition primary, since any partition
// may own records of the new tenant.
func (c *Client) CreateTenant(name string) error {
	fn := func(rw io.ReadWriter) error {
		return c.device.CreateTenant(rw, name)
	}
	if c.cluster != nil {
		return c.fanoutAdmin(fn)
	}
	return c.withSession(fn)
}

// DropTenant removes a tenant namespace and every record in it —
// irreversible. Pinned to the primary connection; in cluster mode it fans
// out to every partition primary.
func (c *Client) DropTenant(name string) error {
	fn := func(rw io.ReadWriter) error {
		return c.device.DropTenant(rw, name)
	}
	if c.cluster != nil {
		return c.fanoutAdmin(fn)
	}
	return c.withSession(fn)
}

// SetTenantLimits installs a per-tenant QoS override on the connected
// server ("" names the default tenant). Overrides are per-process and
// runtime-only; servers without admission control reject the request. In
// cluster mode the override fans out to every partition primary.
func (c *Client) SetTenantLimits(name string, l qos.Limits) error {
	fn := func(rw io.ReadWriter) error {
		return c.device.SetTenantLimits(rw, name, l)
	}
	if c.cluster != nil {
		return c.fanoutAdmin(fn)
	}
	return c.withSession(fn)
}

// TenantLimits asks the connected server for a tenant's effective QoS
// envelope and whether it comes from a per-tenant override (false = the
// server's configured defaults).
func (c *Client) TenantLimits(name string) (qos.Limits, bool, error) {
	var (
		l          qos.Limits
		overridden bool
	)
	err := c.withSession(func(rw io.ReadWriter) error {
		var err error
		l, overridden, err = c.device.TenantLimits(rw, name)
		return err
	})
	return l, overridden, err
}

// IdentifyNormal runs the O(N) normal-approach identification. In cluster
// mode the probe scatter-gathers across every partition, like Identify.
func (c *Client) IdentifyNormal(bio numberline.Vector) (string, error) {
	if c.cluster != nil {
		var id string
		err := c.retrying(func() error {
			var err error
			id, err = c.scatterIdentify(func(rw io.ReadWriter) (string, error) {
				return c.device.IdentifyNormal(rw, bio)
			})
			return err
		})
		return id, err
	}
	var id string
	err := c.readSession(func(rw io.ReadWriter) error {
		var err error
		id, err = c.device.IdentifyNormal(rw, bio)
		return err
	})
	return id, err
}

// retrying runs one session attempt, then — when configured with
// WithOverloadRetry — sleeps and re-runs it for each overload shed, backing
// off exponentially from the server's retry-after hint. Every other outcome
// (including success) returns immediately.
func (c *Client) retrying(run func() error) error {
	err := run()
	for attempt := 0; attempt < c.retries; attempt++ {
		hint, overloaded := protocol.IsOverloaded(err)
		if !overloaded {
			return err
		}
		time.Sleep(overloadDelay(hint, attempt))
		err = run()
	}
	return err
}

// overloadDelay computes the backoff before retry number attempt (0-based):
// the server's retry-after hint (floored at MinOverloadBackoff) doubled per
// attempt, capped at MaxOverloadBackoff. The doubling stops as soon as the
// cap is reached rather than shifting first and clamping after — a naive
// `hint << attempt` overflows int64 negative once attempt is large enough
// (a 1s hint shifted 34 times), and min(negative, cap) would select the
// negative value, turning backoff into a hot retry loop.
func overloadDelay(hint time.Duration, attempt int) time.Duration {
	delay := max(hint, MinOverloadBackoff)
	for ; attempt > 0 && delay < MaxOverloadBackoff; attempt-- {
		delay <<= 1
	}
	return min(delay, MaxOverloadBackoff)
}

func (c *Client) withSession(fn func(io.ReadWriter) error) error {
	return c.retrying(func() error { return c.primarySession(fn) })
}

// primarySession runs one session attempt on the primary connection.
func (c *Client) primarySession(fn func(io.ReadWriter) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return fmt.Errorf("transport: set deadline: %w", err)
		}
	}
	return fn(c.conn)
}

// readSession runs a read-only protocol session, preferring a healthy
// replica (round-robin) and falling back to the primary when none is
// usable. Read sessions are idempotent, so a replica whose connection fails
// mid-session is benched and the session retried elsewhere; likewise an
// overload shed retried under WithOverloadRetry re-enters the rotation, so
// the retry can land on a less loaded server.
func (c *Client) readSession(fn func(io.ReadWriter) error) error {
	return c.retrying(func() error { return c.readOnce(fn) })
}

// readOnce runs one read-session attempt across the replica rotation.
func (c *Client) readOnce(fn func(io.ReadWriter) error) error {
	n := len(c.replicas)
	if n == 0 {
		return c.primarySession(fn)
	}
	// Reduce modulo n in uint32 before converting: a plain int conversion
	// would go negative once the counter wraps past 2^31 on 32-bit
	// platforms and index out of range.
	start := int((c.rr.Add(1) - 1) % uint32(n))
	for i := 0; i < n; i++ {
		rc := c.replicas[(start+i)%n]
		done, err := c.tryReplica(rc, fn)
		if done {
			return err
		}
	}
	c.m.failovers.Inc()
	return c.primarySession(fn)
}

// tryReplica attempts one read session on rc. done is false when the
// replica was skipped or failed at the transport level — the caller moves
// on — and true when the session ran to a protocol outcome (success,
// rejection or no-match), which is returned as-is.
func (c *Client) tryReplica(rc *replicaConn, fn func(io.ReadWriter) error) (done bool, err error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	// Re-check closed under rc.mu (Close releases c.mu before taking the
	// replica locks): a session racing Close must not redial a connection
	// nothing would ever close.
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return true, ErrClosed
	}
	now := time.Now()
	if rc.benched(now) {
		return false, nil
	}
	if rc.conn == nil {
		conn, err := net.DialTimeout("tcp", rc.addr, c.cooldown)
		if err != nil {
			c.benchLocked(rc, now)
			return false, nil
		}
		rc.conn = conn
		rc.lastProbe = time.Time{} // force a fresh status probe
	}
	if now.Sub(rc.lastProbe) >= c.probeIvl {
		if err := c.deadline(rc.conn); err != nil {
			c.benchLocked(rc, now)
			return false, nil
		}
		info, err := c.device.ReplStatus(rc.conn)
		if err != nil {
			c.benchLocked(rc, now)
			return false, nil
		}
		rc.lastProbe = now
		rc.lag = info.Lag()
		rc.lagGauge.Set(int64(rc.lag))
		// The connectivity check always applies; the lag bound only when
		// configured (WithMaxReplicaLag(0) disables staleness policing,
		// not the dead-stream check).
		if info.Role == "replica" && (!info.Connected || (c.maxLag > 0 && rc.lag > c.maxLag)) {
			// Alive but too stale (or cut off from its primary): bench it
			// until the next probe can show the lag drained. The
			// connection stays open — only the routing changes.
			rc.upGauge.Set(0)
			rc.downUntil.Store(now.Add(c.probeIvl).UnixNano())
			c.publishHealthy()
			return false, nil
		}
	}
	if err := c.deadline(rc.conn); err != nil {
		c.benchLocked(rc, now)
		return false, nil
	}
	err = fn(rc.conn)
	if err != nil && !protocol.IsRejected(err) && !errors.Is(err, protocol.ErrNoMatch) {
		if _, overloaded := protocol.IsOverloaded(err); overloaded {
			// An admission-control shed is a protocol outcome, not a broken
			// replica: the server is healthy, just protecting itself. Leave
			// it in rotation and surface the typed error (a client built
			// WithOverloadRetry will back off and try again).
			rc.upGauge.Set(1)
			return true, err
		}
		if _, unknown := protocol.IsUnknownTenant(err); unknown {
			// A lagging follower may not have learned a freshly created
			// tenant yet. The replica is healthy — leave it in rotation and
			// let the read fall through to the next replica or the primary,
			// which is authoritative for the tenant set.
			rc.upGauge.Set(1)
			return false, nil
		}
		if _, notPrimary := protocol.IsNotPrimary(err); !notPrimary {
			// Transport-level failure: bench the replica and let the
			// caller retry the (idempotent) read elsewhere.
			c.benchLocked(rc, now)
			return false, nil
		}
	}
	rc.upGauge.Set(1)
	return true, err
}

// benchLocked takes rc out of rotation for the cooldown; caller holds
// rc.mu.
func (c *Client) benchLocked(rc *replicaConn, now time.Time) {
	if rc.conn != nil {
		rc.conn.Close()
		rc.conn = nil
	}
	rc.downUntil.Store(now.Add(c.cooldown).UnixNano())
	rc.upGauge.Set(0)
	c.publishHealthy()
}

// publishHealthy refreshes the healthy-replica count gauge. downUntil is
// atomic, so other replicas' bench state is read without their locks.
func (c *Client) publishHealthy() {
	if c.m.healthy == nil {
		return
	}
	now := time.Now()
	var up int64
	for _, rc := range c.replicas {
		if !rc.benched(now) {
			up++
		}
	}
	c.m.healthy.Set(up)
}

// deadline arms the per-session deadline on conn.
func (c *Client) deadline(conn net.Conn) error {
	if c.timeout <= 0 {
		return nil
	}
	return conn.SetDeadline(time.Now().Add(c.timeout))
}

// ReplStatus is the decoded answer of a replication health probe.
type ReplStatus struct {
	// Role is "primary", "replica" or "standalone".
	Role string
	// Primary is the primary's address (replicas only).
	Primary string
	// Epoch is the replication log incarnation.
	Epoch uint64
	// Applied is the highest mutation offset applied by the probed server.
	Applied uint64
	// Latest is the highest offset the probed server knows to exist.
	Latest uint64
	// Lag is Latest - Applied.
	Lag uint64
	// Connected reports a replica's stream to its primary being live.
	Connected bool
}

// ReplStatus probes the server on the client's primary connection for its
// replication role and progress.
func (c *Client) ReplStatus() (*ReplStatus, error) {
	var out *ReplStatus
	err := c.withSession(func(rw io.ReadWriter) error {
		info, err := c.device.ReplStatus(rw)
		if err != nil {
			return err
		}
		out = &ReplStatus{
			Role: info.Role, Primary: info.Primary, Epoch: info.Epoch,
			Applied: info.Applied, Latest: info.Latest, Lag: info.Lag(),
			Connected: info.Connected,
		}
		return nil
	})
	return out, err
}

// LocalPair wires a client directly to a protocol server through an
// in-memory pipe (no TCP stack). The returned stop function tears both ends
// down. Benchmarks use it to measure protocol cost without network noise.
// Options (e.g. WithTenant) configure the client; deadlines stay disabled,
// as net.Pipe does not support them.
func LocalPair(proto *protocol.Server, device *protocol.Device, opts ...ClientOption) (*Client, func()) {
	devEnd, srvEnd := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if err := proto.HandleSession(srvEnd); err != nil {
				return
			}
		}
	}()
	opts = append(opts, WithTimeout(0)) // net.Pipe: no deadlines needed
	client := NewClient(devEnd, device, opts...)
	stop := func() {
		client.Close()
		srvEnd.Close()
		<-done
	}
	return client, stop
}
