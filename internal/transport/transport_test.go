package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fuzzyid/internal/biometric"
	"fuzzyid/internal/core"
	"fuzzyid/internal/numberline"
	"fuzzyid/internal/protocol"
	"fuzzyid/internal/qos"
	"fuzzyid/internal/sigscheme"
	"fuzzyid/internal/store"
)

type world struct {
	fe     *core.FuzzyExtractor
	src    *biometric.Source
	proto  *protocol.Server
	device *protocol.Device
}

func newWorld(t *testing.T, dim int, seed int64) *world {
	t.Helper()
	fe, err := core.New(core.Params{Line: numberline.PaperParams(), Dimension: dim})
	if err != nil {
		t.Fatal(err)
	}
	src, err := biometric.NewSource(fe.Line(), biometric.Paper(dim), seed)
	if err != nil {
		t.Fatal(err)
	}
	scheme := sigscheme.Default()
	return &world{
		fe:     fe,
		src:    src,
		proto:  protocol.NewServer(fe, scheme, store.NewBucket(fe.Line(), 0)),
		device: protocol.NewDevice(fe, scheme),
	}
}

func TestTCPEndToEnd(t *testing.T) {
	w := newWorld(t, 64, 201)
	srv, err := Listen("127.0.0.1:0", w.proto, WithIdleTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr().String(), w.device, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	users := w.src.Population(10)
	for _, u := range users {
		if err := client.Enroll(u.ID, u.Template); err != nil {
			t.Fatalf("enroll %s: %v", u.ID, err)
		}
	}
	// Verification.
	reading, err := w.src.GenuineReading(users[3])
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify(users[3].ID, reading); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Proposed identification.
	reading, err = w.src.GenuineReading(users[7])
	if err != nil {
		t.Fatal(err)
	}
	id, err := client.Identify(reading)
	if err != nil {
		t.Fatalf("identify: %v", err)
	}
	if id != users[7].ID {
		t.Fatalf("identified %q, want %q", id, users[7].ID)
	}
	// Normal approach over the same connection.
	reading, err = w.src.GenuineReading(users[2])
	if err != nil {
		t.Fatal(err)
	}
	id, err = client.IdentifyNormal(reading)
	if err != nil {
		t.Fatalf("identify normal: %v", err)
	}
	if id != users[2].ID {
		t.Fatalf("normal identified %q, want %q", id, users[2].ID)
	}
	// Impostor rejection propagates as RejectedError.
	if _, err := client.Identify(w.src.ImpostorReading()); !protocol.IsRejected(err) {
		t.Fatalf("impostor err = %v, want rejection", err)
	}
}

func TestIdentifyBatchOverTCP(t *testing.T) {
	w := newWorld(t, 64, 206)
	srv, err := Listen("127.0.0.1:0", w.proto, WithIdleTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr().String(), w.device, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	users := w.src.Population(12)
	for _, u := range users {
		if err := client.Enroll(u.ID, u.Template); err != nil {
			t.Fatalf("enroll %s: %v", u.ID, err)
		}
	}
	readings := make([]numberline.Vector, 0, 4)
	want := make([]string, 0, 4)
	for _, i := range []int{2, 9} {
		r, err := w.src.GenuineReading(users[i])
		if err != nil {
			t.Fatal(err)
		}
		readings = append(readings, r)
		want = append(want, users[i].ID)
	}
	readings = append(readings, w.src.ImpostorReading())
	want = append(want, "")
	ids, err := client.IdentifyBatch(readings)
	if err != nil {
		t.Fatalf("identify batch: %v", err)
	}
	if len(ids) != len(want) {
		t.Fatalf("got %d ids, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("slot %d = %q, want %q", i, ids[i], want[i])
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	w := newWorld(t, 32, 202)
	srv, err := Listen("127.0.0.1:0", w.proto)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	users := w.src.Population(16)
	// Enroll everyone through one connection first.
	setup, err := Dial(srv.Addr().String(), w.device)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		if err := setup.Enroll(u.ID, u.Template); err != nil {
			t.Fatal(err)
		}
	}
	setup.Close()

	readings := make([]numberline.Vector, len(users))
	for i, u := range users {
		r, err := w.src.GenuineReading(u)
		if err != nil {
			t.Fatal(err)
		}
		readings[i] = r
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(users))
	for i := range users {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr().String(), w.device, WithTimeout(10*time.Second))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			id, err := c.Identify(readings[i])
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			if id != users[i].ID {
				errs <- fmt.Errorf("client %d: identified %q", i, id)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	w := newWorld(t, 16, 203)
	srv, err := Listen("127.0.0.1:0", w.proto)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr().String(), w.device, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Close err = %v", err)
	}
	u := w.src.NewUser("late")
	if err := client.Enroll(u.ID, u.Template); err == nil {
		t.Error("enroll after server close succeeded")
	}
}

func TestClientClosedErrors(t *testing.T) {
	w := newWorld(t, 16, 204)
	srv, err := Listen("127.0.0.1:0", w.proto)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr().String(), w.device)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close err = %v", err)
	}
	u := w.src.NewUser("x")
	if err := client.Enroll(u.ID, u.Template); !errors.Is(err, ErrClosed) {
		t.Errorf("enroll on closed client err = %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	w := newWorld(t, 16, 205)
	if _, err := Dial("127.0.0.1:1", w.device, WithTimeout(time.Second)); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestLocalPair(t *testing.T) {
	w := newWorld(t, 64, 206)
	client, stop := LocalPair(w.proto, w.device)
	defer stop()

	users := w.src.Population(5)
	for _, u := range users {
		if err := client.Enroll(u.ID, u.Template); err != nil {
			t.Fatalf("enroll: %v", err)
		}
	}
	reading, err := w.src.GenuineReading(users[4])
	if err != nil {
		t.Fatal(err)
	}
	id, err := client.Identify(reading)
	if err != nil {
		t.Fatalf("identify: %v", err)
	}
	if id != users[4].ID {
		t.Fatalf("identified %q", id)
	}
	reading, err = w.src.GenuineReading(users[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify(users[0].ID, reading); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestLocalPairStopIsIdempotentSafe(t *testing.T) {
	w := newWorld(t, 16, 207)
	client, stop := LocalPair(w.proto, w.device)
	u := w.src.NewUser("u")
	if err := client.Enroll(u.ID, u.Template); err != nil {
		t.Fatal(err)
	}
	stop()
	if err := client.Enroll("again", u.Template); !errors.Is(err, ErrClosed) {
		t.Errorf("enroll after stop err = %v", err)
	}
}

func TestIdleTimeoutDropsSilentConnection(t *testing.T) {
	w := newWorld(t, 16, 208)
	srv, err := Listen("127.0.0.1:0", w.proto, WithIdleTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr().String(), w.device, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Do nothing; after the idle timeout the server drops us, and the next
	// session fails.
	time.Sleep(300 * time.Millisecond)
	u := w.src.NewUser("slow")
	if err := client.Enroll(u.ID, u.Template); err == nil {
		t.Error("session on idle-dropped connection succeeded")
	}
}

// TestMaxConnsRefusesPastCap checks that WithMaxConns(1) refuses a second
// concurrent connection at accept time and frees the slot when the first
// client disconnects.
func TestMaxConnsRefusesPastCap(t *testing.T) {
	w := newWorld(t, 32, 210)
	srv, err := Listen("127.0.0.1:0", w.proto, WithMaxConns(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c1, err := Dial(srv.Addr().String(), w.device, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	u := w.src.NewUser("alice")
	if err := c1.Enroll(u.ID, u.Template); err != nil {
		t.Fatalf("first connection enroll: %v", err)
	}
	// The first connection holds the only slot for its whole lifetime, so
	// a second client is refused: its session dies on a closed connection
	// instead of being served.
	c2, err := Dial(srv.Addr().String(), w.device, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	u2 := w.src.NewUser("bob")
	if err := c2.Enroll(u2.ID, u2.Template); err == nil {
		t.Fatal("connection past the cap was served")
	}
	c2.Close()

	// Releasing the first connection frees the slot (untrack is async
	// after Close, so retry briefly).
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := Dial(srv.Addr().String(), w.device, WithTimeout(5*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		err = c3.Enroll(u2.ID, u2.Template)
		c3.Close()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after disconnect: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := w.proto.Store().Len(); got != 2 {
		t.Fatalf("store has %d records, want 2", got)
	}
}

// closeRecorder verifies the WithCloser shutdown ordering.
type closeRecorder struct {
	mu     sync.Mutex
	closed int
}

func (c *closeRecorder) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed++
	return nil
}

func TestWithCloserRunsAfterDrain(t *testing.T) {
	w := newWorld(t, 32, 211)
	rec := &closeRecorder{}
	srv, err := Listen("127.0.0.1:0", w.proto, WithCloser(rec))
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr().String(), w.device, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	u := w.src.NewUser("carol")
	if err := client.Enroll(u.ID, u.Template); err != nil {
		t.Fatal(err)
	}
	client.Close()
	if rec.closed != 0 {
		t.Fatal("closer ran before server shutdown")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.closed != 1 {
		t.Fatalf("closer ran %d times, want once", rec.closed)
	}
	// Double server close reports ErrClosed without re-running the closer.
	if err := srv.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close err = %v", err)
	}
	if rec.closed != 1 {
		t.Fatalf("closer ran %d times after double close", rec.closed)
	}
}

// TestOverloadShedTypedAndRetried pins the transport half of the overload
// contract: a shed surfaces as protocol.IsOverloaded with a retry hint on a
// plain client, and a client built WithOverloadRetry absorbs the same shed
// by backing off and retrying inside the call.
func TestOverloadShedTypedAndRetried(t *testing.T) {
	w := newWorld(t, 64, 301)
	w.proto.SetQoS(qos.New(qos.Config{
		Defaults: qos.Limits{Rate: 20, Burst: 1},
		Budget:   time.Millisecond,
	}))
	srv, err := Listen("127.0.0.1:0", w.proto)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	plain, err := Dial(srv.Addr().String(), w.device, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	u := w.src.NewUser("alice")
	if err := plain.Enroll(u.ID, u.Template); err != nil {
		t.Fatalf("enroll: %v", err)
	}
	reading, err := w.src.GenuineReading(u)
	if err != nil {
		t.Fatal(err)
	}
	// The enroll spent the 1-token burst; an identify inside the 50ms
	// refill window must shed with the typed error and a positive hint.
	var hint time.Duration
	sawShed := false
	for i := 0; i < 3 && !sawShed; i++ {
		_, err = plain.Identify(reading)
		hint, sawShed = protocol.IsOverloaded(err)
	}
	if !sawShed {
		t.Fatalf("rate budget never shed; last err = %v", err)
	}
	if hint <= 0 {
		t.Fatalf("retry hint = %v, want > 0", hint)
	}

	retrier, err := Dial(srv.Addr().String(), w.device,
		WithTimeout(5*time.Second), WithOverloadRetry(5))
	if err != nil {
		t.Fatal(err)
	}
	defer retrier.Close()
	// Back-to-back sessions overrun the 20/s budget repeatedly; bounded
	// retry must absorb every shed.
	for i := 0; i < 6; i++ {
		if id, err := retrier.Identify(reading); err != nil || id != u.ID {
			t.Fatalf("identify %d = %q, %v", i, id, err)
		}
	}
}

// TestOverloadLeavesReplicaInRotation pins that an admission-control shed
// from a fanned-out read replica is treated as a protocol outcome — the
// typed error surfaces to the caller and the replica is NOT benched the way
// a transport failure would bench it.
func TestOverloadLeavesReplicaInRotation(t *testing.T) {
	w := newWorld(t, 64, 302)
	// A second server over the same store plays the replica; only it sheds.
	replicaProto := protocol.NewServer(w.fe, sigscheme.Default(), w.proto.Store())
	replicaProto.SetQoS(qos.New(qos.Config{
		Defaults: qos.Limits{Rate: 0.001, Burst: 1},
		Budget:   time.Millisecond,
	}))
	primary, err := Listen("127.0.0.1:0", w.proto)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	replica, err := Listen("127.0.0.1:0", replicaProto)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	client, err := Dial(primary.Addr().String(), w.device,
		WithTimeout(5*time.Second), WithReplicas(replica.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	u := w.src.NewUser("alice")
	if err := client.Enroll(u.ID, u.Template); err != nil {
		t.Fatalf("enroll: %v", err)
	}
	reading, err := w.src.GenuineReading(u)
	if err != nil {
		t.Fatal(err)
	}
	// First fanned read spends the replica's burst; the second must come
	// back as the typed overload error, not a failover to the primary.
	sawShed := false
	for i := 0; i < 3 && !sawShed; i++ {
		_, err = client.Identify(reading)
		_, sawShed = protocol.IsOverloaded(err)
	}
	if !sawShed {
		t.Fatalf("replica never shed; last err = %v", err)
	}
	if client.replicas[0].benched(time.Now()) {
		t.Fatal("shed benched the replica; it must stay in rotation")
	}
}
