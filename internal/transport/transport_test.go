package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fuzzyid/internal/biometric"
	"fuzzyid/internal/core"
	"fuzzyid/internal/numberline"
	"fuzzyid/internal/protocol"
	"fuzzyid/internal/sigscheme"
	"fuzzyid/internal/store"
)

type world struct {
	fe     *core.FuzzyExtractor
	src    *biometric.Source
	proto  *protocol.Server
	device *protocol.Device
}

func newWorld(t *testing.T, dim int, seed int64) *world {
	t.Helper()
	fe, err := core.New(core.Params{Line: numberline.PaperParams(), Dimension: dim})
	if err != nil {
		t.Fatal(err)
	}
	src, err := biometric.NewSource(fe.Line(), biometric.Paper(dim), seed)
	if err != nil {
		t.Fatal(err)
	}
	scheme := sigscheme.Default()
	return &world{
		fe:     fe,
		src:    src,
		proto:  protocol.NewServer(fe, scheme, store.NewBucket(fe.Line(), 0)),
		device: protocol.NewDevice(fe, scheme),
	}
}

func TestTCPEndToEnd(t *testing.T) {
	w := newWorld(t, 64, 201)
	srv, err := Listen("127.0.0.1:0", w.proto, WithIdleTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr().String(), w.device, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	users := w.src.Population(10)
	for _, u := range users {
		if err := client.Enroll(u.ID, u.Template); err != nil {
			t.Fatalf("enroll %s: %v", u.ID, err)
		}
	}
	// Verification.
	reading, err := w.src.GenuineReading(users[3])
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify(users[3].ID, reading); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Proposed identification.
	reading, err = w.src.GenuineReading(users[7])
	if err != nil {
		t.Fatal(err)
	}
	id, err := client.Identify(reading)
	if err != nil {
		t.Fatalf("identify: %v", err)
	}
	if id != users[7].ID {
		t.Fatalf("identified %q, want %q", id, users[7].ID)
	}
	// Normal approach over the same connection.
	reading, err = w.src.GenuineReading(users[2])
	if err != nil {
		t.Fatal(err)
	}
	id, err = client.IdentifyNormal(reading)
	if err != nil {
		t.Fatalf("identify normal: %v", err)
	}
	if id != users[2].ID {
		t.Fatalf("normal identified %q, want %q", id, users[2].ID)
	}
	// Impostor rejection propagates as RejectedError.
	if _, err := client.Identify(w.src.ImpostorReading()); !protocol.IsRejected(err) {
		t.Fatalf("impostor err = %v, want rejection", err)
	}
}

func TestIdentifyBatchOverTCP(t *testing.T) {
	w := newWorld(t, 64, 206)
	srv, err := Listen("127.0.0.1:0", w.proto, WithIdleTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr().String(), w.device, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	users := w.src.Population(12)
	for _, u := range users {
		if err := client.Enroll(u.ID, u.Template); err != nil {
			t.Fatalf("enroll %s: %v", u.ID, err)
		}
	}
	readings := make([]numberline.Vector, 0, 4)
	want := make([]string, 0, 4)
	for _, i := range []int{2, 9} {
		r, err := w.src.GenuineReading(users[i])
		if err != nil {
			t.Fatal(err)
		}
		readings = append(readings, r)
		want = append(want, users[i].ID)
	}
	readings = append(readings, w.src.ImpostorReading())
	want = append(want, "")
	ids, err := client.IdentifyBatch(readings)
	if err != nil {
		t.Fatalf("identify batch: %v", err)
	}
	if len(ids) != len(want) {
		t.Fatalf("got %d ids, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("slot %d = %q, want %q", i, ids[i], want[i])
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	w := newWorld(t, 32, 202)
	srv, err := Listen("127.0.0.1:0", w.proto)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	users := w.src.Population(16)
	// Enroll everyone through one connection first.
	setup, err := Dial(srv.Addr().String(), w.device)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		if err := setup.Enroll(u.ID, u.Template); err != nil {
			t.Fatal(err)
		}
	}
	setup.Close()

	readings := make([]numberline.Vector, len(users))
	for i, u := range users {
		r, err := w.src.GenuineReading(u)
		if err != nil {
			t.Fatal(err)
		}
		readings[i] = r
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(users))
	for i := range users {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr().String(), w.device, WithTimeout(10*time.Second))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			id, err := c.Identify(readings[i])
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			if id != users[i].ID {
				errs <- fmt.Errorf("client %d: identified %q", i, id)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	w := newWorld(t, 16, 203)
	srv, err := Listen("127.0.0.1:0", w.proto)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr().String(), w.device, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Close err = %v", err)
	}
	u := w.src.NewUser("late")
	if err := client.Enroll(u.ID, u.Template); err == nil {
		t.Error("enroll after server close succeeded")
	}
}

func TestClientClosedErrors(t *testing.T) {
	w := newWorld(t, 16, 204)
	srv, err := Listen("127.0.0.1:0", w.proto)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr().String(), w.device)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close err = %v", err)
	}
	u := w.src.NewUser("x")
	if err := client.Enroll(u.ID, u.Template); !errors.Is(err, ErrClosed) {
		t.Errorf("enroll on closed client err = %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	w := newWorld(t, 16, 205)
	if _, err := Dial("127.0.0.1:1", w.device, WithTimeout(time.Second)); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestLocalPair(t *testing.T) {
	w := newWorld(t, 64, 206)
	client, stop := LocalPair(w.proto, w.device)
	defer stop()

	users := w.src.Population(5)
	for _, u := range users {
		if err := client.Enroll(u.ID, u.Template); err != nil {
			t.Fatalf("enroll: %v", err)
		}
	}
	reading, err := w.src.GenuineReading(users[4])
	if err != nil {
		t.Fatal(err)
	}
	id, err := client.Identify(reading)
	if err != nil {
		t.Fatalf("identify: %v", err)
	}
	if id != users[4].ID {
		t.Fatalf("identified %q", id)
	}
	reading, err = w.src.GenuineReading(users[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Verify(users[0].ID, reading); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestLocalPairStopIsIdempotentSafe(t *testing.T) {
	w := newWorld(t, 16, 207)
	client, stop := LocalPair(w.proto, w.device)
	u := w.src.NewUser("u")
	if err := client.Enroll(u.ID, u.Template); err != nil {
		t.Fatal(err)
	}
	stop()
	if err := client.Enroll("again", u.Template); !errors.Is(err, ErrClosed) {
		t.Errorf("enroll after stop err = %v", err)
	}
}

func TestIdleTimeoutDropsSilentConnection(t *testing.T) {
	w := newWorld(t, 16, 208)
	srv, err := Listen("127.0.0.1:0", w.proto, WithIdleTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr().String(), w.device, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Do nothing; after the idle timeout the server drops us, and the next
	// session fails.
	time.Sleep(300 * time.Millisecond)
	u := w.src.NewUser("slow")
	if err := client.Enroll(u.ID, u.Template); err == nil {
		t.Error("session on idle-dropped connection succeeded")
	}
}
