package transport

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"fuzzyid/internal/cluster"
	"fuzzyid/internal/protocol"
	"fuzzyid/internal/wire"
)

// fakeClusterNode is a raw-wire server that answers map fetches with its
// configured map and bounces every enrollment with a WrongPartition
// redirect. bumpVersion controls whether each redirect advances the map
// version (a pathological but protocol-legal server) or replays the same
// version (a buggy or malicious one).
type fakeClusterNode struct {
	ln          net.Listener
	bumpVersion bool
	version     atomic.Uint64
	redirects   atomic.Int64
}

func startFakeClusterNode(t *testing.T, bumpVersion bool) *fakeClusterNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeClusterNode{ln: ln, bumpVersion: bumpVersion}
	f.version.Store(1)
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go f.serve(conn)
		}
	}()
	return f
}

// selfMap is a single-group map owning every slot, led by the fake node.
func (f *fakeClusterNode) selfMap(version uint64) *cluster.Map {
	return &cluster.Map{
		Version: version,
		Slots:   make([]uint32, cluster.NumSlots),
		Groups:  []cluster.Group{{Primary: f.ln.Addr().String()}},
	}
}

func (f *fakeClusterNode) serve(conn net.Conn) {
	defer conn.Close()
	for {
		msg, err := wire.Receive(conn)
		if err != nil {
			return
		}
		switch msg.(type) {
		case *wire.ClusterMapRequest:
			err = wire.Send(conn, &wire.ClusterMapInfo{Map: f.selfMap(f.version.Load())})
		default:
			// Any keyed session opener: bounce it. A malicious node replays
			// its current map; a churning one advances the version first.
			f.redirects.Add(1)
			v := f.version.Load()
			if f.bumpVersion {
				v = f.version.Add(1)
			}
			err = wire.Send(conn, &wire.WrongPartition{Map: f.selfMap(v)})
		}
		if err != nil {
			return
		}
	}
}

// TestClusterRedirectNotAdvancing is the stale-map regression test: a node
// that answers a keyed session with a WrongPartition carrying a map version
// that does not advance the client's cached map must produce a typed error
// after one redirect — never a retry loop. Before the strictly-newer
// install guard, the client would re-route to the same node forever.
func TestClusterRedirectNotAdvancing(t *testing.T) {
	f := startFakeClusterNode(t, false)
	w := newWorld(t, 16, 301)
	client, err := Dial(f.ln.Addr().String(), w.device, WithCluster(), WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	u := w.src.NewUser("bounced")
	err = client.Enroll(u.ID, u.Template)
	if !errors.Is(err, ErrMapNotAdvancing) {
		t.Fatalf("enroll against a non-advancing redirect: err = %v, want ErrMapNotAdvancing", err)
	}
	if n := f.redirects.Load(); n != 1 {
		t.Fatalf("client followed %d redirects before giving up, want exactly 1", n)
	}
}

// TestClusterRedirectHopBound: a node whose redirects do advance the map
// version (so each one is individually legal) but never resolve the key is
// cut off by the hop bound instead of looping.
func TestClusterRedirectHopBound(t *testing.T) {
	f := startFakeClusterNode(t, true)
	w := newWorld(t, 16, 302)
	client, err := Dial(f.ln.Addr().String(), w.device, WithCluster(), WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	u := w.src.NewUser("hopper")
	err = client.Enroll(u.ID, u.Template)
	if !errors.Is(err, ErrMapNotAdvancing) {
		t.Fatalf("enroll against churning redirects: err = %v, want ErrMapNotAdvancing", err)
	}
	if n := f.redirects.Load(); n != maxClusterRedirects+1 {
		t.Fatalf("client followed %d redirects, want %d (the hop bound)", n, maxClusterRedirects+1)
	}
}

// TestClusterVerifyNotClusterNode: a WithCluster client pointed at a
// standalone server fails loudly on the map fetch instead of guessing.
func TestClusterVerifyNotClusterNode(t *testing.T) {
	w := newWorld(t, 16, 303)
	srv, err := Listen("127.0.0.1:0", w.proto)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr().String(), w.device, WithCluster(), WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	u := w.src.NewUser("lost")
	if err := client.Enroll(u.ID, u.Template); !protocol.IsRejected(err) {
		t.Fatalf("cluster client against standalone server: err = %v, want rejection", err)
	}
}
