package transport

import (
	"testing"
	"time"
)

// TestOverloadDelayNeverOverflows is the regression test for the
// exponential-backoff overflow: the old expression
//
//	delay := max(hint, MinOverloadBackoff) << attempt
//	time.Sleep(min(delay, MaxOverloadBackoff))
//
// shifts a 1s hint negative once attempt >= 34 (int64 wraparound), and the
// min() then selects the negative value — time.Sleep returns immediately and
// the client hammers an already-overloaded server. The fixed overloadDelay
// must stay inside [MinOverloadBackoff, MaxOverloadBackoff] for every
// attempt number.
func TestOverloadDelayNeverOverflows(t *testing.T) {
	// Demonstrate that the old expression actually went negative where the
	// new one is exercised below — this documents what the test guards.
	old := func(hint time.Duration, attempt int) time.Duration {
		return min(max(hint, MinOverloadBackoff)<<attempt, MaxOverloadBackoff)
	}
	if old(time.Second, 34) > 0 {
		t.Fatalf("expected the pre-fix expression to overflow negative at attempt 34, got %v", old(time.Second, 34))
	}

	for _, hint := range []time.Duration{0, time.Millisecond, MinOverloadBackoff, 100 * time.Millisecond, time.Second, 10 * time.Second} {
		for attempt := 0; attempt < 128; attempt++ {
			got := overloadDelay(hint, attempt)
			if got < MinOverloadBackoff || got > MaxOverloadBackoff {
				t.Fatalf("overloadDelay(%v, %d) = %v, want within [%v, %v]",
					hint, attempt, got, MinOverloadBackoff, MaxOverloadBackoff)
			}
		}
	}
}

// TestOverloadDelayDoubles pins the intended schedule: hint-seeded, doubling
// per attempt, monotonic, saturating at the cap.
func TestOverloadDelayDoubles(t *testing.T) {
	hint := 10 * time.Millisecond
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		160 * time.Millisecond,
		320 * time.Millisecond,
		640 * time.Millisecond,
		MaxOverloadBackoff, // 1.28s clamped
		MaxOverloadBackoff,
	}
	for attempt, w := range want {
		if got := overloadDelay(hint, attempt); got != w {
			t.Fatalf("overloadDelay(%v, %d) = %v, want %v", hint, attempt, got, w)
		}
	}
	// A hint below the floor seeds from MinOverloadBackoff.
	if got := overloadDelay(0, 0); got != MinOverloadBackoff {
		t.Fatalf("overloadDelay(0, 0) = %v, want %v", got, MinOverloadBackoff)
	}
	// A hint above the cap is clamped even at attempt 0.
	if got := overloadDelay(time.Minute, 0); got != MaxOverloadBackoff {
		t.Fatalf("overloadDelay(1m, 0) = %v, want %v", got, MaxOverloadBackoff)
	}
}
