package shield

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func newQIM(t *testing.T, step float64) *QIM {
	t.Helper()
	s, err := New(step)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := New(bad); !errors.Is(err, ErrBadStep) {
			t.Errorf("New(%v) err = %v", bad, err)
		}
	}
	s := newQIM(t, 0.5)
	if s.Step() != 0.5 || s.Tolerance() != 0.25 {
		t.Errorf("(Step, Tolerance) = (%v, %v)", s.Step(), s.Tolerance())
	}
}

func TestConcealRevealExact(t *testing.T) {
	s := newQIM(t, 1.0)
	rng := rand.New(rand.NewSource(121))
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64() * 100
		bit := byte(rng.Intn(2))
		w, err := s.Conceal(x, bit)
		if err != nil {
			t.Fatal(err)
		}
		// Helper magnitude bounded by the full step (nearest point of one
		// sublattice is at most q away).
		if math.Abs(w) > s.Step()+1e-9 {
			t.Fatalf("helper %v exceeds step bound", w)
		}
		got, err := s.Reveal(x, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != bit {
			t.Fatalf("exact reveal = %d, want %d (x=%v, w=%v)", got, bit, x, w)
		}
	}
}

func TestRevealUnderNoise(t *testing.T) {
	s := newQIM(t, 2.0)
	rng := rand.New(rand.NewSource(122))
	for i := 0; i < 1000; i++ {
		x := rng.Float64()*200 - 100
		bit := byte(rng.Intn(2))
		w, err := s.Conceal(x, bit)
		if err != nil {
			t.Fatal(err)
		}
		noise := (rng.Float64()*2 - 1) * (s.Tolerance() * 0.99)
		got, err := s.Reveal(x+noise, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != bit {
			t.Fatalf("noisy reveal = %d, want %d (noise=%v)", got, bit, noise)
		}
	}
}

func TestRevealBeyondToleranceFlips(t *testing.T) {
	s := newQIM(t, 1.0)
	// Noise of exactly one step lands on the neighbouring lattice point of
	// opposite parity.
	x := 0.3
	w, err := s.Conceal(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Reveal(x+s.Step(), w)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("one-step noise revealed %d, want flipped bit 1", got)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	s := newQIM(t, 0.25)
	rng := rand.New(rand.NewSource(123))
	n := 256
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	bits, err := GenerateBits(n)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := s.ConcealVector(xs, bits)
	if err != nil {
		t.Fatal(err)
	}
	ys := make([]float64, n)
	for i := range ys {
		ys[i] = xs[i] + (rng.Float64()*2-1)*s.Tolerance()*0.95
	}
	got, err := s.RevealVector(ys, ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d = %d, want %d", i, got[i], bits[i])
		}
	}
}

func TestVectorValidation(t *testing.T) {
	s := newQIM(t, 1)
	if _, err := s.ConcealVector([]float64{1}, []byte{0, 1}); !errors.Is(err, ErrDimension) {
		t.Errorf("mismatch err = %v", err)
	}
	if _, err := s.RevealVector([]float64{1}, nil); !errors.Is(err, ErrDimension) {
		t.Errorf("mismatch err = %v", err)
	}
	if _, err := s.ConcealVector([]float64{math.NaN()}, []byte{0}); !errors.Is(err, ErrBadFeature) {
		t.Errorf("NaN err = %v", err)
	}
	if _, err := s.ConcealVector([]float64{1}, []byte{7}); !errors.Is(err, ErrBadBit) {
		t.Errorf("bad bit err = %v", err)
	}
	if _, err := s.Reveal(math.Inf(1), 0); !errors.Is(err, ErrBadFeature) {
		t.Errorf("Inf err = %v", err)
	}
}

func TestHelperHidesBit(t *testing.T) {
	// For inputs uniform within one 2q cell, the helper distribution must
	// be (nearly) identical for both key bits — the shielding property. We
	// check that helper values for bit 0 and bit 1 cover the same range
	// with similar means.
	s := newQIM(t, 1.0)
	rng := rand.New(rand.NewSource(124))
	var sum0, sum1 float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		x := rng.Float64() * 2 // uniform over one 2q cell
		w0, err := s.Conceal(x, 0)
		if err != nil {
			t.Fatal(err)
		}
		w1, err := s.Conceal(x, 1)
		if err != nil {
			t.Fatal(err)
		}
		sum0 += w0
		sum1 += w1
	}
	mean0 := sum0 / trials
	mean1 := sum1 / trials
	if math.Abs(mean0-mean1) > 0.05 {
		t.Errorf("helper means differ: %v vs %v (bit leaks)", mean0, mean1)
	}
}

func TestGenerateBits(t *testing.T) {
	bits, err := GenerateBits(128)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, b := range bits {
		if b > 1 {
			t.Fatal("non-binary bit")
		}
		ones += int(b)
	}
	if ones == 0 || ones == 128 {
		t.Errorf("degenerate bit distribution: %d ones", ones)
	}
	if _, err := GenerateBits(0); err == nil {
		t.Error("n=0 accepted")
	}
}
