// Package shield implements the quantization-index-modulation (QIM)
// shielding functions of Linnartz and Tuyls (AVBPA 2003), the
// continuous-domain line of work the paper's related-work section (§VIII)
// contrasts with discrete constructions.
//
// For each real-valued feature x and key bit b, the helper value w shifts x
// onto the nearest point of the sublattice encoding b (even multiples of
// the quantization step q encode 0, odd multiples encode 1). A noisy
// re-measurement y recovers b as long as |y - x| < q/2: quantizing y + w
// lands on the original lattice point, whose parity is the bit. The helper
// value w lies in [-q, q) and, for inputs uniform within a cell, carries no
// information about b.
//
// Combined with a strong extractor this yields a fuzzy extractor for the
// continuous Euclidean metric; the repository uses it as a comparator
// substrate and for front ends whose features arrive as floats.
package shield

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math"
)

// Errors returned by the shielding functions.
var (
	ErrBadStep    = errors.New("shield: quantization step must be positive and finite")
	ErrBadFeature = errors.New("shield: feature must be finite")
	ErrDimension  = errors.New("shield: dimension mismatch")
	ErrBadBit     = errors.New("shield: key bits must be 0 or 1")
)

// QIM is a quantization-index-modulation shielding function with step q.
// The zero value is not usable; construct with New.
type QIM struct {
	step float64
}

// New validates the step and constructs a QIM shielder. Noise up to
// (but excluding) step/2 per feature is tolerated on reveal.
func New(step float64) (*QIM, error) {
	if !(step > 0) || math.IsInf(step, 0) || math.IsNaN(step) {
		return nil, ErrBadStep
	}
	return &QIM{step: step}, nil
}

// Step returns the quantization step q.
func (s *QIM) Step() float64 { return s.step }

// Tolerance returns the per-feature noise bound q/2 (exclusive).
func (s *QIM) Tolerance() float64 { return s.step / 2 }

// Conceal computes the helper value w for one feature and key bit:
// x + w is the nearest lattice point of parity b.
func (s *QIM) Conceal(x float64, bit byte) (float64, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, ErrBadFeature
	}
	if bit > 1 {
		return 0, ErrBadBit
	}
	// Lattice points of parity b are (2k + b) * q.
	q2 := 2 * s.step
	target := math.Round((x-float64(bit)*s.step)/q2)*q2 + float64(bit)*s.step
	return target - x, nil
}

// Reveal recovers the key bit from a noisy measurement y and helper w.
func (s *QIM) Reveal(y, w float64) (byte, error) {
	if math.IsNaN(y) || math.IsInf(y, 0) || math.IsNaN(w) || math.IsInf(w, 0) {
		return 0, ErrBadFeature
	}
	idx := int64(math.Round((y + w) / s.step))
	return byte(((idx % 2) + 2) % 2), nil
}

// ConcealVector computes helper values for a feature vector and key bits of
// equal length.
func (s *QIM) ConcealVector(xs []float64, bits []byte) ([]float64, error) {
	if len(xs) != len(bits) {
		return nil, fmt.Errorf("%w: %d features vs %d bits", ErrDimension, len(xs), len(bits))
	}
	out := make([]float64, len(xs))
	for i := range xs {
		w, err := s.Conceal(xs[i], bits[i])
		if err != nil {
			return nil, fmt.Errorf("feature %d: %w", i, err)
		}
		out[i] = w
	}
	return out, nil
}

// RevealVector recovers the key bits from noisy measurements and helpers.
func (s *QIM) RevealVector(ys, ws []float64) ([]byte, error) {
	if len(ys) != len(ws) {
		return nil, fmt.Errorf("%w: %d measurements vs %d helpers", ErrDimension, len(ys), len(ws))
	}
	out := make([]byte, len(ys))
	for i := range ys {
		b, err := s.Reveal(ys[i], ws[i])
		if err != nil {
			return nil, fmt.Errorf("feature %d: %w", i, err)
		}
		out[i] = b
	}
	return out, nil
}

// GenerateBits draws n uniform key bits.
func GenerateBits(n int) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrDimension, n)
	}
	raw := make([]byte, (n+7)/8)
	if _, err := rand.Read(raw); err != nil {
		return nil, fmt.Errorf("shield: randomness: %w", err)
	}
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = (raw[i/8] >> uint(i%8)) & 1
	}
	return bits, nil
}
