// Package cluster defines the keyspace-sharded topology shared by every
// layer of the multi-primary deployment: a fixed hash-slot space over
// (tenant, user ID), a versioned map assigning slots to primary groups, and
// the per-process Node state (which slots this process owns, which are
// frozen mid-handoff).
//
// The design mirrors the store's own sharding one level up: just as records
// spread across in-process shards by ID hash, they spread across processes
// by slot. NumSlots is deliberately small (64) — a cluster map is a few
// hundred bytes and travels inside WrongPartition redirects — while still
// allowing fine-grained rebalancing (a 4-group cluster moves 1/64 of the
// keyspace at minimum granularity).
//
// Maps are immutable once built and advance by version: every topology
// change (split, move) produces a new map with Version+1, and installers
// accept only strictly newer versions. That single rule makes redirect
// convergence provable: a client that honours a WrongPartition redirect
// either learns a strictly newer map (progress) or detects a non-advancing
// redirect and fails fast instead of looping.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"fuzzyid/internal/store"
)

// Write-gate verdicts (see store.Journaled.SetWriteGate): the authoritative
// refusals a cluster node's journal seam returns for mutations of slots the
// node must not change. They back the polite protocol-level checks — a
// session admitted just before a freeze still cannot land a mutation after
// the handoff cut, because the gate runs under the same mutex the cut
// holds.
var (
	// ErrSlotFrozen refuses a mutation of a slot mid-handoff; the
	// condition is transient and the client should retry.
	ErrSlotFrozen = errors.New("cluster: slot frozen mid-handoff")
	// ErrSlotNotOwned refuses a mutation of a slot this node's group does
	// not own; the client holds a stale map and must re-route.
	ErrSlotNotOwned = errors.New("cluster: slot not owned by this partition")
)

// NumSlots is the fixed size of the hash-slot space. Every (tenant, user ID)
// pair maps to exactly one slot; every slot is owned by exactly one group.
const NumSlots = 64

// MaxGroups bounds the number of primary groups a map may carry; it keeps
// wire decoding of hostile maps cheap.
const MaxGroups = 256

// SlotOf returns the slot owning the given (tenant, user ID) pair: FNV-64a
// over the canonical tenant name, a NUL separator, and the ID, reduced mod
// NumSlots. The NUL keeps ("ab","c") and ("a","bc") in independent slots.
func SlotOf(tenant, id string) uint32 {
	h := fnv.New64a()
	h.Write([]byte(store.CanonicalTenant(tenant)))
	h.Write([]byte{0})
	h.Write([]byte(id))
	return uint32(h.Sum64() % NumSlots)
}

// Group is one primary and its read replicas.
type Group struct {
	// Primary is the advertised address of the group's primary.
	Primary string
	// Replicas are the advertised addresses of the group's read-only
	// followers (may be empty).
	Replicas []string
}

// Map is one immutable version of the cluster topology: which group owns
// each slot, and each group's member addresses. Treat a *Map as read-only
// after construction — Nodes and clients share pointers freely.
type Map struct {
	// Version orders maps; installers accept only strictly larger versions.
	Version uint64
	// Slots maps slot number → index into Groups. len(Slots) == NumSlots.
	Slots []uint32
	// Groups lists the primary groups.
	Groups []Group
}

// Validate checks structural invariants: a version, exactly NumSlots slot
// assignments, at least one group, every slot pointing at a real group, and
// non-empty primary addresses.
func (m *Map) Validate() error {
	if m == nil {
		return fmt.Errorf("cluster: nil map")
	}
	if m.Version == 0 {
		return fmt.Errorf("cluster: map version 0")
	}
	if len(m.Slots) != NumSlots {
		return fmt.Errorf("cluster: map has %d slot entries, want %d", len(m.Slots), NumSlots)
	}
	if len(m.Groups) == 0 || len(m.Groups) > MaxGroups {
		return fmt.Errorf("cluster: map has %d groups", len(m.Groups))
	}
	for i, g := range m.Groups {
		if g.Primary == "" {
			return fmt.Errorf("cluster: group %d has no primary", i)
		}
	}
	for s, gi := range m.Slots {
		if int(gi) >= len(m.Groups) {
			return fmt.Errorf("cluster: slot %d assigned to group %d of %d", s, gi, len(m.Groups))
		}
	}
	return nil
}

// GroupOf returns the group owning the given slot.
func (m *Map) GroupOf(slot uint32) Group {
	return m.Groups[m.Slots[slot%NumSlots]]
}

// PrimaryOf returns the primary address owning the given slot.
func (m *Map) PrimaryOf(slot uint32) string { return m.GroupOf(slot).Primary }

// GroupIndexOf returns the index of the group whose primary advertises addr,
// or -1 when no group does.
func (m *Map) GroupIndexOf(addr string) int {
	for i, g := range m.Groups {
		if g.Primary == addr {
			return i
		}
	}
	return -1
}

// SlotsOwnedBy returns the sorted slots assigned to the given group index.
func (m *Map) SlotsOwnedBy(group int) []uint32 {
	var out []uint32
	for s, gi := range m.Slots {
		if int(gi) == group {
			out = append(out, uint32(s))
		}
	}
	return out
}

// Clone returns a deep copy safe to mutate while building a successor map.
func (m *Map) Clone() *Map {
	c := &Map{Version: m.Version}
	c.Slots = append([]uint32(nil), m.Slots...)
	c.Groups = make([]Group, len(m.Groups))
	for i, g := range m.Groups {
		c.Groups[i] = Group{Primary: g.Primary, Replicas: append([]string(nil), g.Replicas...)}
	}
	return c
}

// Moved returns a successor map (Version+1) with the given slots reassigned
// to the group whose primary is target, appending a new group when target is
// not yet in the map. It fails if any slot is out of range or target is
// empty.
func (m *Map) Moved(slots []uint32, target string, targetReplicas []string) (*Map, error) {
	if target == "" {
		return nil, fmt.Errorf("cluster: move without a target primary")
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("cluster: move without slots")
	}
	next := m.Clone()
	next.Version = m.Version + 1
	gi := next.GroupIndexOf(target)
	if gi < 0 {
		if len(next.Groups) >= MaxGroups {
			return nil, fmt.Errorf("cluster: map already has %d groups", MaxGroups)
		}
		next.Groups = append(next.Groups, Group{Primary: target, Replicas: append([]string(nil), targetReplicas...)})
		gi = len(next.Groups) - 1
	}
	for _, s := range slots {
		if s >= NumSlots {
			return nil, fmt.Errorf("cluster: slot %d out of range", s)
		}
		next.Slots[s] = uint32(gi)
	}
	return next, nil
}

// ParseSpec builds the deterministic version-1 map from a topology spec:
// groups separated by ';', members within a group by ',', the first member
// being the group's primary and the rest its replicas. Slots are assigned
// round-robin across groups, so every process given the same spec computes
// the same map.
func ParseSpec(spec string) (*Map, error) {
	var groups []Group
	for _, gs := range strings.Split(spec, ";") {
		gs = strings.TrimSpace(gs)
		if gs == "" {
			continue
		}
		var g Group
		for i, member := range strings.Split(gs, ",") {
			member = strings.TrimSpace(member)
			if member == "" {
				return nil, fmt.Errorf("cluster: empty member in group spec %q", gs)
			}
			if i == 0 {
				g.Primary = member
			} else {
				g.Replicas = append(g.Replicas, member)
			}
		}
		groups = append(groups, g)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("cluster: empty cluster spec")
	}
	if len(groups) > MaxGroups {
		return nil, fmt.Errorf("cluster: spec names %d groups (max %d)", len(groups), MaxGroups)
	}
	seen := make(map[string]bool)
	for _, g := range groups {
		if seen[g.Primary] {
			return nil, fmt.Errorf("cluster: duplicate primary %q in spec", g.Primary)
		}
		seen[g.Primary] = true
	}
	m := &Map{Version: 1, Slots: make([]uint32, NumSlots), Groups: groups}
	for s := range m.Slots {
		m.Slots[s] = uint32(s % len(groups))
	}
	return m, nil
}

// Node is one process's view of the cluster: its advertised address, the
// current map, and the set of slots frozen mid-handoff. A node whose
// address appears in no group is "joining" — it owns nothing and serves
// only as a handoff target until a map flip brings it in.
type Node struct {
	self string

	mu     sync.RWMutex
	m      *Map
	frozen map[uint32]bool
}

// NewNode builds a node advertising self under the given initial map.
func NewNode(self string, m *Map) (*Node, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if self == "" {
		return nil, fmt.Errorf("cluster: node without an advertised address")
	}
	return &Node{self: self, m: m, frozen: make(map[uint32]bool)}, nil
}

// Self returns the node's advertised address.
func (n *Node) Self() string { return n.self }

// Map returns the current map (immutable; safe to share).
func (n *Node) Map() *Map {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.m
}

// GroupIndex returns the index of the group this node leads, or -1 when the
// node is joining (its address appears as no group's primary).
func (n *Node) GroupIndex() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.m.GroupIndexOf(n.self)
}

// Owns reports whether this node's group owns the given slot under the
// current map. A joining node owns nothing.
func (n *Node) Owns(slot uint32) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	gi := n.m.GroupIndexOf(n.self)
	return gi >= 0 && int(n.m.Slots[slot%NumSlots]) == gi
}

// Frozen reports whether the given slot is frozen mid-handoff: mutations
// must shed (retryable) rather than land in a record set already cut.
func (n *Node) Frozen(slot uint32) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.frozen[slot%NumSlots]
}

// Freeze marks slots as mid-handoff.
func (n *Node) Freeze(slots []uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, s := range slots {
		n.frozen[s%NumSlots] = true
	}
}

// Unfreeze clears the handoff mark.
func (n *Node) Unfreeze(slots []uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, s := range slots {
		delete(n.frozen, s%NumSlots)
	}
}

// Gate is the write-gate verdict for a mutation of (tenant, id): frozen
// slots refuse with ErrSlotFrozen (retryable), slots owned by another group
// with ErrSlotNotOwned (re-route). Install it on the journal seam via
// store.Registry.SetWriteGate.
func (n *Node) Gate(tenant, id string) error {
	slot := SlotOf(tenant, id)
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.frozen[slot] {
		return ErrSlotFrozen
	}
	gi := n.m.GroupIndexOf(n.self)
	if gi < 0 || int(n.m.Slots[slot]) != gi {
		return ErrSlotNotOwned
	}
	return nil
}

// Install adopts m if it is structurally valid and strictly newer than the
// current map, reporting whether it was adopted. The strict ordering is the
// redirect-convergence invariant: topology only moves forward.
func (n *Node) Install(m *Map) bool {
	if m.Validate() != nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Version <= n.m.Version {
		return false
	}
	n.m = m
	return true
}

// FormatSlots renders a slot list compactly ("0-4,7,9-12") for logs and CLI
// output.
func FormatSlots(slots []uint32) string {
	if len(slots) == 0 {
		return ""
	}
	s := append([]uint32(nil), slots...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var b strings.Builder
	for i := 0; i < len(s); {
		j := i
		for j+1 < len(s) && s[j+1] == s[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&b, "%d-%d", s[i], s[j])
		} else {
			fmt.Fprintf(&b, "%d", s[i])
		}
		i = j + 1
	}
	return b.String()
}

// ParseSlots parses the FormatSlots syntax back into a slot list.
func ParseSlots(s string) ([]uint32, error) {
	var out []uint32
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lo, hi := part, part
		if i := strings.IndexByte(part, '-'); i >= 0 {
			lo, hi = part[:i], part[i+1:]
		}
		var a, b uint32
		if _, err := fmt.Sscanf(lo, "%d", &a); err != nil {
			return nil, fmt.Errorf("cluster: bad slot %q", part)
		}
		if _, err := fmt.Sscanf(hi, "%d", &b); err != nil {
			return nil, fmt.Errorf("cluster: bad slot %q", part)
		}
		if a > b || b >= NumSlots {
			return nil, fmt.Errorf("cluster: bad slot range %q", part)
		}
		for v := a; v <= b; v++ {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty slot list %q", s)
	}
	return out, nil
}
