package cluster

import (
	"fmt"
	"testing"
)

func TestSlotOfDeterministicAndBounded(t *testing.T) {
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("user-%04d", i)
		s := SlotOf("", id)
		if s >= NumSlots {
			t.Fatalf("SlotOf(%q) = %d out of range", id, s)
		}
		if s != SlotOf("default", id) {
			t.Fatalf("empty tenant and default tenant disagree for %q", id)
		}
		if s != SlotOf("", id) {
			t.Fatalf("SlotOf(%q) not deterministic", id)
		}
	}
}

func TestSlotOfTenantSeparator(t *testing.T) {
	// The NUL separator must keep ("ab","c") and ("a","bc") independent:
	// with plain concatenation they would always collide.
	collisions := 0
	for i := 0; i < 200; i++ {
		a := SlotOf(fmt.Sprintf("t%d", i), "x")
		b := SlotOf(fmt.Sprintf("t%dx", i), "")
		if a == b {
			collisions++
		}
	}
	if collisions > 50 {
		t.Fatalf("tenant/id boundary not separated: %d/200 forced collisions", collisions)
	}
}

func TestSlotOfSpreads(t *testing.T) {
	counts := make([]int, NumSlots)
	const n = 6400
	for i := 0; i < n; i++ {
		counts[SlotOf("", fmt.Sprintf("user-%05d", i))]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("slot %d received none of %d uniform IDs", s, n)
		}
	}
}

func TestParseSpec(t *testing.T) {
	m, err := ParseSpec("p0,r0a,r0b; p1 ;p2,r2a")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 {
		t.Fatalf("version %d, want 1", m.Version)
	}
	if len(m.Groups) != 3 {
		t.Fatalf("groups %d, want 3", len(m.Groups))
	}
	if m.Groups[0].Primary != "p0" || len(m.Groups[0].Replicas) != 2 {
		t.Fatalf("group 0 = %+v", m.Groups[0])
	}
	if m.Groups[1].Primary != "p1" || len(m.Groups[1].Replicas) != 0 {
		t.Fatalf("group 1 = %+v", m.Groups[1])
	}
	// Round-robin slot assignment: every group owns NumSlots/3 ± 1.
	for gi := range m.Groups {
		owned := len(m.SlotsOwnedBy(gi))
		if owned < NumSlots/3 || owned > NumSlots/3+1 {
			t.Fatalf("group %d owns %d slots", gi, owned)
		}
	}
	if _, err := ParseSpec(""); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := ParseSpec("p0;p0"); err == nil {
		t.Fatal("duplicate primary accepted")
	}
	if _, err := ParseSpec("p0,,r"); err == nil {
		t.Fatal("empty member accepted")
	}
}

func TestMovedAppendsAndReassigns(t *testing.T) {
	m, _ := ParseSpec("p0;p1")
	slots := m.SlotsOwnedBy(0)[:4]
	next, err := m.Moved(slots, "p2", []string{"r2"})
	if err != nil {
		t.Fatal(err)
	}
	if next.Version != m.Version+1 {
		t.Fatalf("version %d, want %d", next.Version, m.Version+1)
	}
	if len(next.Groups) != 3 || next.Groups[2].Primary != "p2" {
		t.Fatalf("target group not appended: %+v", next.Groups)
	}
	for _, s := range slots {
		if next.PrimaryOf(s) != "p2" {
			t.Fatalf("slot %d still owned by %s", s, next.PrimaryOf(s))
		}
		if m.PrimaryOf(s) != "p0" {
			t.Fatal("Moved mutated the source map")
		}
	}
	// Moving to an existing primary reuses its group.
	next2, err := next.Moved(slots[:1], "p1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(next2.Groups) != 3 {
		t.Fatalf("move to existing group appended a group: %+v", next2.Groups)
	}
	if next2.PrimaryOf(slots[0]) != "p1" {
		t.Fatal("slot not reassigned to existing group")
	}
}

func TestNodeOwnershipFreezeInstall(t *testing.T) {
	m, _ := ParseSpec("p0;p1")
	n, err := NewNode("p0", m)
	if err != nil {
		t.Fatal(err)
	}
	owned := m.SlotsOwnedBy(0)
	other := m.SlotsOwnedBy(1)
	if !n.Owns(owned[0]) || n.Owns(other[0]) {
		t.Fatal("ownership wrong")
	}
	if n.Frozen(owned[0]) {
		t.Fatal("fresh node has frozen slots")
	}
	n.Freeze(owned[:2])
	if !n.Frozen(owned[0]) || !n.Frozen(owned[1]) || n.Frozen(owned[2]) {
		t.Fatal("freeze wrong")
	}
	n.Unfreeze(owned[:2])
	if n.Frozen(owned[0]) {
		t.Fatal("unfreeze wrong")
	}

	// Install: strictly newer only.
	stale := m.Clone()
	if n.Install(stale) {
		t.Fatal("same-version map installed")
	}
	next, _ := m.Moved(owned[:2], "p1", nil)
	if !n.Install(next) {
		t.Fatal("newer map refused")
	}
	if n.Owns(owned[0]) {
		t.Fatal("node still owns a moved slot")
	}
	if n.Install(m) {
		t.Fatal("older map installed")
	}
	bad := next.Clone()
	bad.Version++
	bad.Slots = bad.Slots[:1]
	if n.Install(bad) {
		t.Fatal("invalid map installed")
	}

	// A joining node (address in no group) owns nothing.
	j, _ := NewNode("p9", m)
	if j.GroupIndex() != -1 {
		t.Fatalf("joining node group %d", j.GroupIndex())
	}
	for s := uint32(0); s < NumSlots; s++ {
		if j.Owns(s) {
			t.Fatalf("joining node owns slot %d", s)
		}
	}
}

func TestFormatParseSlots(t *testing.T) {
	in := []uint32{9, 0, 1, 2, 4, 12, 10, 11}
	s := FormatSlots(in)
	if s != "0-2,4,9-12" {
		t.Fatalf("FormatSlots = %q", s)
	}
	back, err := ParseSlots(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(in) {
		t.Fatalf("roundtrip %v -> %q -> %v", in, s, back)
	}
	if _, err := ParseSlots("70"); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if _, err := ParseSlots("5-3"); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := ParseSlots(""); err == nil {
		t.Fatal("empty list accepted")
	}
}
