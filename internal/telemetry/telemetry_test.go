package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0}, // negative durations are clamped, not a panic
		{0, 0},
		{500 * time.Nanosecond, 0},         // sub-microsecond
		{999 * time.Nanosecond, 0},         // just under the first bound
		{time.Microsecond, 1},              // exactly 1µs opens bucket 1
		{time.Microsecond + 999, 1},        // 1.999µs still bucket 1
		{2 * time.Microsecond, 2},          // exactly 2µs opens bucket 2
		{3 * time.Microsecond, 2},          // [2µs, 4µs)
		{4 * time.Microsecond, 3},          // boundary again
		{1023 * time.Microsecond, 10},      // just under 1.024ms
		{1024 * time.Microsecond, 11},      // 2^10 µs boundary
		{time.Second, 20},                  // 1e6 µs: 2^19 < 1e6 < 2^20
		{100 * time.Hour, NumBuckets - 1},  // absurd outlier: top bucket
		{time.Duration(math.MaxInt64), 39}, // no overflow at the extreme
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestBucketUpperBound(t *testing.T) {
	if got := BucketUpperBound(0); got != time.Microsecond {
		t.Fatalf("bucket 0 upper bound = %v, want 1µs", got)
	}
	if got := BucketUpperBound(11); got != 2048*time.Microsecond {
		t.Fatalf("bucket 11 upper bound = %v, want 2.048ms", got)
	}
	// Every observation lands strictly below its bucket's upper bound and at
	// or above the previous bucket's.
	for _, d := range []time.Duration{0, time.Microsecond, 999 * time.Microsecond, 17 * time.Millisecond, 3 * time.Second} {
		i := bucketIndex(d)
		if d >= BucketUpperBound(i) && i != NumBuckets-1 {
			t.Errorf("%v landed in bucket %d but >= its upper bound %v", d, i, BucketUpperBound(i))
		}
		if i > 0 && d < BucketUpperBound(i-1) {
			t.Errorf("%v landed in bucket %d but < lower bound %v", d, i, BucketUpperBound(i-1))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations at ~1ms, 10 slow at ~100ms: p50 must sit in the
	// 1ms bucket, p99 in the 100ms bucket.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < 512*time.Microsecond || p50 > 2048*time.Microsecond {
		t.Errorf("p50 = %v, want within the ~1ms bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 64*time.Millisecond || p99 > 140*time.Millisecond {
		t.Errorf("p99 = %v, want within the ~100ms bucket", p99)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Errorf("quantiles not monotone: q0=%v q1=%v", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %v, want 0", got)
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P99MS != 0 || len(s.Bucket) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	g.Inc()
	g.Dec()
	g.Set(3)
	h.Observe(time.Second)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be 0")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("transport.conns.accepted")
	b := r.Counter("transport.conns.accepted")
	if a != b {
		t.Fatal("same name must resolve to the same counter")
	}
	a.Add(3)
	if got := r.Snapshot().Counter("transport.conns.accepted"); got != 3 {
		t.Fatalf("snapshot counter = %d, want 3", got)
	}
}

// TestConcurrentObservation hammers one histogram and one counter from many
// goroutines; run under -race this certifies the lock-free hot path, and the
// final totals certify that no observation was lost.
func TestConcurrentObservation(t *testing.T) {
	const workers = 8
	const perWorker = 10000
	r := NewRegistry()
	h := r.Histogram("protocol.identify.latency")
	c := r.Counter("protocol.identify.requests")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(time.Duration(w*i%5000) * time.Microsecond)
				if i%1000 == 0 {
					_ = r.Snapshot() // snapshots race observations by design
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var sum uint64
	for _, b := range h.Snapshot().Bucket {
		sum += b.Count
	}
	if sum != workers*perWorker {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*perWorker)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("persist.wal.appends").Add(42)
	r.Gauge("transport.conns.active").Set(5)
	for i := 0; i < 10; i++ {
		r.Histogram("protocol.enroll.latency").Observe(3 * time.Millisecond)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ParseSnapshot(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseSnapshot: %v\n%s", err, buf.String())
	}
	if s.Counter("persist.wal.appends") != 42 {
		t.Fatalf("round-tripped counter = %d, want 42", s.Counter("persist.wal.appends"))
	}
	if s.Gauges["transport.conns.active"] != 5 {
		t.Fatalf("round-tripped gauge = %d, want 5", s.Gauges["transport.conns.active"])
	}
	hs := s.Histograms["protocol.enroll.latency"]
	if hs.Count != 10 || hs.P50MS <= 0 {
		t.Fatalf("round-tripped histogram: %+v", hs)
	}
	// The export is plain JSON an external scraper can parse too.
	var generic map[string]any
	if err := json.Unmarshal(buf.Bytes(), &generic); err != nil {
		t.Fatal(err)
	}
	if _, ok := generic["histograms"]; !ok {
		t.Fatal("JSON export missing histograms key")
	}
}

// TestSnapshotRuntimeStats pins the runtime view a macro-benchmark scrapes:
// present in every fresh snapshot, sane values, and absent-but-parseable in
// documents produced before the field existed.
func TestSnapshotRuntimeStats(t *testing.T) {
	s := NewRegistry().Snapshot()
	if s.Runtime == nil {
		t.Fatal("Snapshot.Runtime is nil")
	}
	if s.Runtime.HeapAllocBytes == 0 || s.Runtime.HeapSysBytes == 0 {
		t.Fatalf("implausible heap stats: %+v", *s.Runtime)
	}
	if s.Runtime.Goroutines < 1 {
		t.Fatalf("goroutines = %d", s.Runtime.Goroutines)
	}
	if s.Runtime.GCPauseTotalMS < 0 {
		t.Fatalf("negative GC pause total: %v", s.Runtime.GCPauseTotalMS)
	}
	// Pre-Runtime documents must still parse, with the field simply nil.
	old, err := ParseSnapshot([]byte(`{"taken_at_ms":1,"counters":{},"gauges":{},"histograms":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	if old.Runtime != nil {
		t.Fatalf("legacy document grew a runtime view: %+v", old.Runtime)
	}
}
