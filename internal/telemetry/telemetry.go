// Package telemetry is the operational observability seam of the system:
// cheap counters, gauges and fixed-bucket latency histograms that the
// transport, protocol and persistence layers update on their hot paths, and
// a registry that exports everything as one JSON snapshot.
//
// Design constraints, in order:
//
//   - An observation must cost almost nothing: every instrument is a set of
//     atomics, updated lock-free with zero heap allocations, so metrics can
//     stay on even when a server handles the paper's "millions of users".
//   - Instruments are resolved from the registry once, at construction time,
//     and held as pointers by the instrumented code — the per-event path
//     never touches a map or a lock.
//   - A nil instrument is a valid no-op: uninstrumented deployments pay one
//     predictable branch per call site and nothing else.
//
// Snapshots are taken with atomic loads while observations continue; a
// snapshot is therefore a consistent-enough monitoring view, not a
// linearizable cut (a histogram's count can be momentarily ahead of its
// sum). All durations are recorded in nanoseconds and exported in
// milliseconds.
package telemetry

import (
	"encoding/json"
	"io"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is ready
// to use; a nil *Counter discards observations.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current count (0 for a nil Counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (e.g. active connections). The zero value
// is ready to use; a nil *Gauge discards observations.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() {
	if g == nil {
		return
	}
	g.v.Add(1)
}

// Dec subtracts one.
func (g *Gauge) Dec() {
	if g == nil {
		return
	}
	g.v.Add(-1)
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Load returns the current level (0 for a nil Gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// NumBuckets is the number of histogram buckets. Bucket 0 holds
// observations under 1µs; bucket i (i >= 1) holds observations in
// [2^(i-1)µs, 2^i µs); the last bucket additionally absorbs everything
// beyond its lower bound. 2^38 µs ≈ 76 hours, far past any latency this
// system can produce, so the top bucket is effectively "absurd outliers".
const NumBuckets = 40

// BucketUpperBound returns the exclusive upper bound of bucket i.
func BucketUpperBound(i int) time.Duration {
	if i >= NumBuckets-1 {
		// The top bucket is unbounded; report its lower bound's double so
		// interpolation still has an extent to work with.
		i = NumBuckets - 1
	}
	return time.Duration(1<<uint(i)) * time.Microsecond
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	if d < 0 {
		return 0
	}
	us := uint64(d / time.Microsecond)
	// bits.Len64(us) = floor(log2(us))+1, so us in [2^(i-1), 2^i) maps to
	// bucket i; us == 0 (sub-microsecond) maps to bucket 0.
	i := bits.Len64(us)
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Histogram accumulates duration observations into NumBuckets fixed
// power-of-two-microsecond buckets. Observe is lock-free and allocation-free.
// The zero value is ready to use; a nil *Histogram discards observations.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Int64
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// ObserveValue records one dimensionless value (a batch size, a byte count)
// by mapping value v onto the duration scale as v milliseconds. The
// snapshot's MeanMS/P50MS/... fields then read back as plain values — the
// same bucketed-distribution machinery, reused for non-latency quantities.
func (h *Histogram) ObserveValue(v uint64) {
	h.Observe(time.Duration(v) * time.Millisecond)
}

// Count returns the number of observations (0 for a nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-th quantile (q in [0, 1]) by locating the bucket
// containing the rank and interpolating linearly inside it. It returns 0
// when the histogram is empty. The estimate's resolution is the bucket
// width: exact to within a factor of two, which is ample for p50/p95/p99
// load reporting.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	return quantileFromBuckets(h.snapshotBuckets(), q)
}

func (h *Histogram) snapshotBuckets() [NumBuckets]uint64 {
	var b [NumBuckets]uint64
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
	}
	return b
}

func quantileFromBuckets(b [NumBuckets]uint64, q float64) time.Duration {
	var total uint64
	for _, c := range b {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank: the smallest observation such that q of the mass is at
	// or below it.
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range b {
		if c == 0 {
			continue
		}
		if rank < cum+c {
			lo := time.Duration(0)
			if i > 0 {
				lo = BucketUpperBound(i - 1)
			}
			hi := BucketUpperBound(i)
			// Position of the rank inside this bucket, in [0, 1).
			frac := float64(rank-cum) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	return BucketUpperBound(NumBuckets - 1)
}

// HistogramSnapshot is the exported state of one histogram. Durations are
// reported in milliseconds; Buckets lists only the non-empty buckets, each
// with its exclusive upper bound in microseconds.
type HistogramSnapshot struct {
	Count  uint64          `json:"count"`
	MeanMS float64         `json:"mean_ms"`
	P50MS  float64         `json:"p50_ms"`
	P95MS  float64         `json:"p95_ms"`
	P99MS  float64         `json:"p99_ms"`
	MaxMS  float64         `json:"max_ms"` // upper bound of the highest occupied bucket
	Bucket []BucketExports `json:"buckets,omitempty"`
}

// BucketExports is one non-empty bucket of a HistogramSnapshot.
type BucketExports struct {
	// UpperUS is the bucket's exclusive upper bound in microseconds.
	UpperUS int64 `json:"le_us"`
	// Count is the number of observations in the bucket.
	Count uint64 `json:"count"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Snapshot exports the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	b := h.snapshotBuckets()
	var s HistogramSnapshot
	for _, c := range b {
		s.Count += c
	}
	if s.Count == 0 {
		return s
	}
	sum := h.sumNS.Load()
	s.MeanMS = ms(time.Duration(sum / int64(s.Count)))
	s.P50MS = ms(quantileFromBuckets(b, 0.50))
	s.P95MS = ms(quantileFromBuckets(b, 0.95))
	s.P99MS = ms(quantileFromBuckets(b, 0.99))
	for i, c := range b {
		if c == 0 {
			continue
		}
		s.MaxMS = ms(BucketUpperBound(i))
		s.Bucket = append(s.Bucket, BucketExports{
			UpperUS: int64(BucketUpperBound(i) / time.Microsecond),
			Count:   c,
		})
	}
	return s
}

// Registry holds named instruments. Names are dotted paths
// ("layer.object.event", e.g. "protocol.identify.requests"); registration is
// get-or-create and safe for concurrent use, but the intended pattern is to
// resolve instruments once at construction time and keep the pointers.
// A nil *Registry hands out nil instruments, so an uninstrumented component
// needs no special casing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil when
// r is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil when r is nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// LabelledCounters resolves counters of one dotted family —
// "<prefix>.<label>.<suffix>" — on demand and caches them per label, so a
// hot path that discovers its label at runtime (e.g. the tenant a request
// names) pays a read-locked map hit instead of the registry mutex plus a
// string concatenation per event. The labelled counters appear in the
// registry snapshot like any other counter.
type LabelledCounters struct {
	reg            *Registry
	prefix, suffix string

	mu      sync.RWMutex
	byLabel map[string]*Counter
}

// LabelledCounters returns a labelled counter family rooted at prefix with
// the given suffix. Returns nil when r is nil; a nil family hands out nil
// (no-op) counters.
func (r *Registry) LabelledCounters(prefix, suffix string) *LabelledCounters {
	if r == nil {
		return nil
	}
	return &LabelledCounters{
		reg: r, prefix: prefix, suffix: suffix,
		byLabel: make(map[string]*Counter),
	}
}

// Get returns the counter for label, creating "<prefix>.<label>.<suffix>"
// in the registry on first use. Safe for concurrent use; nil-safe.
func (l *LabelledCounters) Get(label string) *Counter {
	if l == nil {
		return nil
	}
	l.mu.RLock()
	c, ok := l.byLabel[label]
	l.mu.RUnlock()
	if ok {
		return c
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if c, ok = l.byLabel[label]; ok {
		return c
	}
	c = l.reg.Counter(l.prefix + "." + label + "." + l.suffix)
	l.byLabel[label] = c
	return c
}

// Snapshot is the exported state of a whole registry. Map keys are the
// instrument names; the JSON field names are part of the output contract of
// the -stats-addr endpoint and the stats wire message — append only.
type Snapshot struct {
	// TakenAtMS is the snapshot wall-clock time in Unix milliseconds.
	TakenAtMS int64 `json:"taken_at_ms"`
	// Counters maps counter names to their totals.
	Counters map[string]uint64 `json:"counters"`
	// Gauges maps gauge names to their levels.
	Gauges map[string]int64 `json:"gauges"`
	// Histograms maps histogram names to their exported state.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Runtime carries the Go runtime's memory and GC state at snapshot
	// time. Omitted (nil) in snapshots produced before the field existed,
	// so older documents still parse.
	Runtime *RuntimeStats `json:"runtime,omitempty"`
}

// RuntimeStats is the process-level memory and GC view exported with every
// snapshot: what an external macro-benchmark needs to attribute latency to
// collector pauses and RSS to the heap, without scraping pprof. All values
// come from runtime.ReadMemStats.
type RuntimeStats struct {
	// HeapAllocBytes is the live heap (runtime.MemStats.HeapAlloc).
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// HeapSysBytes is the heap address space held from the OS.
	HeapSysBytes uint64 `json:"heap_sys_bytes"`
	// TotalAllocBytes is the cumulative bytes allocated since start.
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// GCPauseTotalMS is the cumulative stop-the-world pause time in
	// (fractional) milliseconds.
	GCPauseTotalMS float64 `json:"gc_pause_total_ms"`
	// GCCycles is the number of completed GC cycles.
	GCCycles uint32 `json:"gc_cycles"`
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
}

// Counter returns the named counter total (0 when absent), a convenience
// for tests and the load harness's count cross-check.
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Snapshot exports every instrument. Safe to call while observations
// continue. Returns a zero Snapshot when r is nil.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	s.TakenAtMS = time.Now().UnixMilli()
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Load()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Load()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.Runtime = &RuntimeStats{
		HeapAllocBytes:  ms.HeapAlloc,
		HeapSysBytes:    ms.HeapSys,
		TotalAllocBytes: ms.TotalAlloc,
		GCPauseTotalMS:  float64(ms.PauseTotalNs) / 1e6,
		GCCycles:        ms.NumGC,
		Goroutines:      runtime.NumGoroutine(),
	}
	return s
}

// MarshalJSON renders the snapshot with deterministic key order (Go's
// encoding/json already sorts map keys; this simply delegates to a plain
// struct encode, present so the contract is explicit).
func (s Snapshot) marshal() ([]byte, error) {
	type alias Snapshot
	return json.MarshalIndent(alias(s), "", "  ")
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := r.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}

// MarshalJSON returns the registry snapshot as indented JSON — the payload
// of the -stats-addr endpoint and the stats wire message.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return r.Snapshot().marshal()
}

// ParseSnapshot decodes a snapshot previously produced by MarshalJSON /
// WriteJSON (the client side of the stats wire message).
func ParseSnapshot(buf []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Names returns the registered instrument names, sorted, for diagnostics.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k := range r.counters {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
