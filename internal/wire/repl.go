package wire

// This file defines the replication sub-protocol: the messages a follower
// exchanges with a primary to subscribe to its mutation stream, and the
// mutation codec shared with the on-disk WAL (internal/persist frames the
// very same payloads). A replication session is opened like any other
// protocol session — the follower sends ReplSubscribe — but stays open
// indefinitely: the primary streams ReplSnapshot chunks (bootstrap), then
// ReplFrame per committed mutation and ReplHeartbeat while idle; the
// follower answers with ReplAck. See DESIGN.md §8 for the full protocol.

import (
	"fmt"

	"fuzzyid/internal/store"
)

// MaxReplChunk bounds the records of one ReplSnapshot chunk.
const MaxReplChunk = 1 << 10

// Mutation codec tags. Tags 1 and 2 are the pre-tenant encodings of insert
// and delete; they keep their exact byte layout so every WAL written before
// namespaces existed replays unchanged (into the default tenant), and so
// default-tenant frames stay byte-identical to what PR 2-4 deployments
// wrote. Tags 3-6 are the tenant-qualified forms; 5 and 6 double as the
// store.Op values of the registry-level ops. Tag 7 (replace) postdates
// namespaces, so it has no legacy untenanted twin: it always carries the
// tenant name, with "" meaning the default tenant. Append only.
const (
	mutInsert       = byte(store.OpInsert)
	mutDelete       = byte(store.OpDelete)
	mutTenantInsert = 3
	mutTenantDelete = 4
	mutTenantCreate = byte(store.OpTenantCreate)
	mutTenantDrop   = byte(store.OpTenantDrop)
	mutReplace      = byte(store.OpReplace)
)

// EncodeMutation appends one store mutation: a tag byte, then the tenant
// name for tenant-qualified tags, then the record (insert) or the
// length-prefixed ID (delete). Default-tenant mutations (Tenant == "") use
// the legacy untenanted tags, so their encoding is byte-for-byte the
// pre-tenant one. This is the payload format of both the on-disk WAL
// (internal/persist) and the replication stream (ReplFrame), so a WAL frame
// and a shipped frame are byte-identical.
func EncodeMutation(e *Encoder, m store.Mutation) error {
	switch m.Op {
	case store.OpInsert:
		if m.Record == nil {
			return fmt.Errorf("%w: insert mutation without record", ErrBadFrame)
		}
		if m.Tenant == "" {
			e.Byte(mutInsert)
		} else {
			e.Byte(mutTenantInsert)
			e.String(m.Tenant)
		}
		EncodeRecord(e, m.Record)
	case store.OpDelete:
		if m.Tenant == "" {
			e.Byte(mutDelete)
		} else {
			e.Byte(mutTenantDelete)
			e.String(m.Tenant)
		}
		e.String(m.ID)
	case store.OpReplace:
		if m.Record == nil {
			return fmt.Errorf("%w: replace mutation without record", ErrBadFrame)
		}
		e.Byte(mutReplace)
		e.String(m.Tenant)
		EncodeRecord(e, m.Record)
	case store.OpTenantCreate, store.OpTenantDrop:
		if m.Tenant == "" {
			return fmt.Errorf("%w: tenant op %d without tenant", ErrBadFrame, m.Op)
		}
		e.Byte(byte(m.Op))
		e.String(m.Tenant)
	default:
		return fmt.Errorf("%w: unknown mutation op %d", ErrBadFrame, m.Op)
	}
	return nil
}

// DecodeMutation reads one store mutation encoded by EncodeMutation —
// either the legacy untenanted tags (decoded with Tenant "", the default
// tenant) or the tenant-qualified forms.
func DecodeMutation(d *Decoder) (store.Mutation, error) {
	tag, err := d.Byte()
	if err != nil {
		return store.Mutation{}, err
	}
	tenant := ""
	switch tag {
	case mutTenantInsert, mutTenantDelete, mutTenantCreate, mutTenantDrop:
		if tenant, err = d.String(MaxTenantLen); err != nil {
			return store.Mutation{}, err
		}
		if tenant == "" {
			// The canonical encoding of the default tenant is the legacy
			// tag; an empty tenant here is a malformed frame, not a choice.
			return store.Mutation{}, fmt.Errorf("%w: empty tenant in mutation tag %d", ErrBadFrame, tag)
		}
	case mutReplace:
		// Replace has no legacy untenanted tag, so "" is its canonical
		// encoding of the default tenant.
		if tenant, err = d.String(MaxTenantLen); err != nil {
			return store.Mutation{}, err
		}
	}
	switch tag {
	case mutInsert, mutTenantInsert:
		rec, err := DecodeRecord(d)
		if err != nil {
			return store.Mutation{}, err
		}
		m := store.InsertMutation(rec)
		m.Tenant = tenant
		return m, nil
	case mutDelete, mutTenantDelete:
		id, err := d.String(MaxBytesLen)
		if err != nil {
			return store.Mutation{}, err
		}
		m := store.DeleteMutation(id)
		m.Tenant = tenant
		return m, nil
	case mutReplace:
		rec, err := DecodeRecord(d)
		if err != nil {
			return store.Mutation{}, err
		}
		m := store.ReplaceMutation(rec)
		m.Tenant = tenant
		return m, nil
	case mutTenantCreate:
		return store.Mutation{Op: store.OpTenantCreate, Tenant: tenant}, nil
	case mutTenantDrop:
		return store.Mutation{Op: store.OpTenantDrop, Tenant: tenant}, nil
	default:
		return store.Mutation{}, fmt.Errorf("%w: unknown mutation op %d", ErrBadFrame, tag)
	}
}

// NotPrimary rejects a mutating session on a read-only replica. It carries
// the primary's address so the client can redirect the enrollment or
// revocation instead of treating the rejection as terminal.
type NotPrimary struct {
	// Primary is the address of the server that accepts mutations.
	Primary string
}

// Type implements Message.
func (*NotPrimary) Type() MsgType { return TypeNotPrimary }

func (m *NotPrimary) encode(e *Encoder) { e.String(m.Primary) }

func (m *NotPrimary) decode(d *Decoder) error {
	var err error
	m.Primary, err = d.String(MaxBytesLen)
	return err
}

// ReplSubscribe opens a replication session: the follower asks the primary
// to stream every mutation from offset From on. Epoch identifies the
// primary's log incarnation the follower last spoke to; on a mismatch (a
// restarted primary, or a brand-new follower with epoch 0) the primary falls
// back to a snapshot bootstrap regardless of From.
type ReplSubscribe struct {
	// Epoch is the primary log incarnation the follower last applied from
	// (0 for a fresh follower).
	Epoch uint64
	// From is the first mutation offset the follower still needs
	// (its last applied offset + 1; offsets start at 1).
	From uint64
}

// Type implements Message.
func (*ReplSubscribe) Type() MsgType { return TypeReplSubscribe }

func (m *ReplSubscribe) encode(e *Encoder) {
	e.Uint64(m.Epoch)
	e.Uint64(m.From)
}

func (m *ReplSubscribe) decode(d *Decoder) error {
	var err error
	if m.Epoch, err = d.Uint64(); err != nil {
		return err
	}
	m.From, err = d.Uint64()
	return err
}

// ReplSnapshot is one chunk of a snapshot bootstrap: the primary ships its
// full record set — every tenant's, tenant by tenant, at most MaxReplChunk
// records per chunk — as the state preceding offset Next. The first chunk
// (First) tells the follower to discard its local state; after the chunk
// with Done set, ReplFrame streaming resumes at offset Next. An empty
// tenant still contributes one zero-record chunk, so followers mirror the
// tenant set exactly.
type ReplSnapshot struct {
	// Epoch is the primary's current log incarnation.
	Epoch uint64
	// Next is the offset of the first mutation not contained in the
	// snapshot — the offset streaming resumes at.
	Next uint64
	// First marks the first chunk: the follower clears its store before
	// applying it.
	First bool
	// Done marks the last chunk: the snapshot is complete.
	Done bool
	// Tenant is the namespace this chunk's records belong to ("" is the
	// default tenant).
	Tenant string
	// Records is this chunk's slice of the tenant's record set.
	Records []*store.Record
}

// Type implements Message.
func (*ReplSnapshot) Type() MsgType { return TypeReplSnapshot }

func (m *ReplSnapshot) encode(e *Encoder) {
	e.Uint64(m.Epoch)
	e.Uint64(m.Next)
	e.Bool(m.First)
	e.Bool(m.Done)
	e.String(m.Tenant)
	e.Uint32(uint32(len(m.Records)))
	for _, rec := range m.Records {
		EncodeRecord(e, rec)
	}
}

func (m *ReplSnapshot) decode(d *Decoder) error {
	var err error
	if m.Epoch, err = d.Uint64(); err != nil {
		return err
	}
	if m.Next, err = d.Uint64(); err != nil {
		return err
	}
	if m.First, err = d.Bool(); err != nil {
		return err
	}
	if m.Done, err = d.Bool(); err != nil {
		return err
	}
	if m.Tenant, err = d.String(MaxTenantLen); err != nil {
		return err
	}
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if int(n) > MaxReplChunk {
		return fmt.Errorf("%w: snapshot chunk %d", ErrTooLarge, n)
	}
	m.Records = make([]*store.Record, n)
	for i := range m.Records {
		if m.Records[i], err = DecodeRecord(d); err != nil {
			return err
		}
	}
	return nil
}

// ReplFrame ships one committed mutation at its log offset. Frames arrive
// in strictly ascending offset order; a gap tells the follower it must
// resynchronise.
type ReplFrame struct {
	// Epoch is the primary's current log incarnation.
	Epoch uint64
	// Offset is the mutation's position in the primary's log (1-based).
	Offset uint64
	// Latest is the highest offset committed on the primary when the
	// frame was sent, so a catching-up follower can see its real lag
	// without waiting for an idle heartbeat.
	Latest uint64
	// Mut is the mutation itself.
	Mut store.Mutation
}

// Type implements Message.
func (*ReplFrame) Type() MsgType { return TypeReplFrame }

func (m *ReplFrame) encode(e *Encoder) {
	e.Uint64(m.Epoch)
	e.Uint64(m.Offset)
	e.Uint64(m.Latest)
	// A frame is only ever built from a mutation that already passed
	// EncodeMutation's validation on the append path; an invalid op here
	// would be a programming error, surfaced as a decode failure peer-side.
	_ = EncodeMutation(e, m.Mut)
}

func (m *ReplFrame) decode(d *Decoder) error {
	var err error
	if m.Epoch, err = d.Uint64(); err != nil {
		return err
	}
	if m.Offset, err = d.Uint64(); err != nil {
		return err
	}
	if m.Latest, err = d.Uint64(); err != nil {
		return err
	}
	m.Mut, err = DecodeMutation(d)
	return err
}

// ReplAck reports the follower's progress: every mutation at or below
// Offset has been applied. The primary uses it to compute replica lag.
type ReplAck struct {
	// Offset is the highest offset the follower has applied.
	Offset uint64
}

// Type implements Message.
func (*ReplAck) Type() MsgType { return TypeReplAck }

func (m *ReplAck) encode(e *Encoder) { e.Uint64(m.Offset) }

func (m *ReplAck) decode(d *Decoder) error {
	var err error
	m.Offset, err = d.Uint64()
	return err
}

// ReplHeartbeat keeps an idle replication stream alive and tells the
// follower the primary's latest offset, so lag is observable even when no
// mutations flow. The follower answers with a ReplAck.
type ReplHeartbeat struct {
	// Epoch is the primary's current log incarnation.
	Epoch uint64
	// Latest is the highest offset the primary has committed.
	Latest uint64
}

// Type implements Message.
func (*ReplHeartbeat) Type() MsgType { return TypeReplHeartbeat }

func (m *ReplHeartbeat) encode(e *Encoder) {
	e.Uint64(m.Epoch)
	e.Uint64(m.Latest)
}

func (m *ReplHeartbeat) decode(d *Decoder) error {
	var err error
	if m.Epoch, err = d.Uint64(); err != nil {
		return err
	}
	m.Latest, err = d.Uint64()
	return err
}

// ReplStatus asks any server for its replication role and progress — the
// cheap health probe behind the client's replica fan-out policy.
type ReplStatus struct{}

// Type implements Message.
func (*ReplStatus) Type() MsgType { return TypeReplStatus }

func (m *ReplStatus) encode(e *Encoder) {}

func (m *ReplStatus) decode(d *Decoder) error { return nil }

// ReplStatusInfo answers a ReplStatus probe.
type ReplStatusInfo struct {
	// Role is "primary" (serving replication), "replica", or "standalone".
	Role string
	// Primary is the primary's address (replicas only).
	Primary string
	// Epoch is the log incarnation this server is at (0 when unknown).
	Epoch uint64
	// Applied is the highest offset applied locally.
	Applied uint64
	// Latest is the highest offset known to exist (equals Applied on a
	// primary; on a replica it trails the primary by the current lag).
	Latest uint64
	// Connected reports whether a replica's stream to its primary is live
	// (always true on a primary).
	Connected bool
}

// Type implements Message.
func (*ReplStatusInfo) Type() MsgType { return TypeReplStatusInfo }

// Lag returns the number of committed mutations this server has not applied
// yet.
func (m *ReplStatusInfo) Lag() uint64 {
	if m.Latest <= m.Applied {
		return 0
	}
	return m.Latest - m.Applied
}

func (m *ReplStatusInfo) encode(e *Encoder) {
	e.String(m.Role)
	e.String(m.Primary)
	e.Uint64(m.Epoch)
	e.Uint64(m.Applied)
	e.Uint64(m.Latest)
	e.Bool(m.Connected)
}

func (m *ReplStatusInfo) decode(d *Decoder) error {
	var err error
	if m.Role, err = d.String(MaxBytesLen); err != nil {
		return err
	}
	if m.Primary, err = d.String(MaxBytesLen); err != nil {
		return err
	}
	if m.Epoch, err = d.Uint64(); err != nil {
		return err
	}
	if m.Applied, err = d.Uint64(); err != nil {
		return err
	}
	if m.Latest, err = d.Uint64(); err != nil {
		return err
	}
	m.Connected, err = d.Bool()
	return err
}
