package wire

import (
	"errors"
	"testing"

	"fuzzyid/internal/store"
)

func TestMutationCodecRoundTrip(t *testing.T) {
	cases := []store.Mutation{
		store.InsertMutation(&store.Record{
			ID: "alice", PublicKey: []byte("pk"), Helper: testHelper([]int64{1, -2, 3}),
		}),
		store.DeleteMutation("bob"),
		store.ReplaceMutation(&store.Record{
			ID: "alice", PublicKey: []byte("pk2"), Helper: testHelper([]int64{4, 5}),
		}),
		tenantQualified(store.ReplaceMutation(&store.Record{
			ID: "alice", PublicKey: []byte("pk3"), Helper: testHelper([]int64{6}),
		}), "acme"),
	}
	for _, m := range cases {
		e := NewEncoder(64)
		if err := EncodeMutation(e, m); err != nil {
			t.Fatalf("encode op %d: %v", m.Op, err)
		}
		d := NewDecoder(e.Bytes())
		got, err := DecodeMutation(d)
		if err != nil {
			t.Fatalf("decode op %d: %v", m.Op, err)
		}
		if err := d.Done(); err != nil {
			t.Fatalf("trailing bytes: %v", err)
		}
		if got.Op != m.Op || got.ID != m.ID || got.Tenant != m.Tenant {
			t.Fatalf("decoded (%d, %q, %q), want (%d, %q, %q)",
				got.Op, got.ID, got.Tenant, m.Op, m.ID, m.Tenant)
		}
		if m.Record != nil && got.Record.ID != m.Record.ID {
			t.Fatalf("decoded record %q, want %q", got.Record.ID, m.Record.ID)
		}
	}
}

func tenantQualified(m store.Mutation, tenant string) store.Mutation {
	m.Tenant = tenant
	return m
}

func TestMutationCodecRejectsBadOp(t *testing.T) {
	if err := EncodeMutation(NewEncoder(8), store.Mutation{Op: 99}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("encode bad op: %v", err)
	}
	if err := EncodeMutation(NewEncoder(8), store.Mutation{Op: store.OpInsert}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("encode insert without record: %v", err)
	}
	if err := EncodeMutation(NewEncoder(8), store.Mutation{Op: store.OpReplace}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("encode replace without record: %v", err)
	}
	d := NewDecoder([]byte{99})
	if _, err := DecodeMutation(d); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("decode bad op: %v", err)
	}
}

func TestReplMessagesRoundTrip(t *testing.T) {
	rec := &store.Record{ID: "carol", PublicKey: []byte("pk"), Helper: testHelper([]int64{5})}
	msgs := []Message{
		&NotPrimary{Primary: "10.0.0.1:7700"},
		&ReplSubscribe{Epoch: 0xdead, From: 42},
		&ReplSnapshot{Epoch: 1, Next: 10, First: true, Done: true, Records: []*store.Record{rec}},
		&ReplFrame{Epoch: 2, Offset: 7, Mut: store.InsertMutation(rec)},
		&ReplFrame{Epoch: 2, Offset: 8, Mut: store.DeleteMutation("carol")},
		&ReplFrame{Epoch: 2, Offset: 9, Mut: store.ReplaceMutation(rec)},
		&ReplAck{Offset: 8},
		&ReplHeartbeat{Epoch: 2, Latest: 9},
		&ReplStatus{},
		&ReplStatusInfo{Role: "replica", Primary: "10.0.0.1:7700", Epoch: 2, Applied: 8, Latest: 9, Connected: true},
	}
	for _, m := range msgs {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatalf("marshal %T: %v", m, err)
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("unmarshal %T: %v", m, err)
		}
		if got.Type() != m.Type() {
			t.Fatalf("round-tripped %T into %T", m, got)
		}
	}
}

func TestReplStatusInfoLag(t *testing.T) {
	if lag := (&ReplStatusInfo{Applied: 5, Latest: 9}).Lag(); lag != 4 {
		t.Fatalf("lag = %d, want 4", lag)
	}
	// A replica can briefly know a higher applied than latest (frame seen
	// before any heartbeat); lag never underflows.
	if lag := (&ReplStatusInfo{Applied: 9, Latest: 5}).Lag(); lag != 0 {
		t.Fatalf("lag = %d, want 0", lag)
	}
}

func TestReplSnapshotChunkBound(t *testing.T) {
	e := NewEncoder(64)
	e.Byte(byte(TypeReplSnapshot))
	e.Uint64(1)
	e.Uint64(1)
	e.Bool(true)
	e.Bool(true)
	e.Uint32(MaxReplChunk + 1)
	if _, err := Unmarshal(e.Bytes()); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized snapshot chunk: %v", err)
	}
}
