package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal feeds arbitrary bytes to the message decoder: it must never
// panic, and anything it accepts must re-encode to a decodable message of
// the same type (decode/encode/decode stability).
func FuzzUnmarshal(f *testing.F) {
	// Seed with every message type plus structural edge cases.
	seeds := []Message{
		&EnrollRequest{ID: "alice", PublicKey: []byte{1, 2, 3}},
		&EnrollOK{ID: "x"},
		&VerifyRequest{ID: "y"},
		&IdentifyRequest{Normal: true},
		&Challenge{Challenge: []byte("c")},
		&ChallengeBatch{},
		&Signature{Signature: []byte("s"), Nonce: []byte("n")},
		&BatchSignature{Index: 3},
		&Accept{ID: "z"},
		&Reject{Reason: "r"},
		&RevokeRequest{ID: "w"},
		&IdentifyBatchRequest{},
		&IdentifyBatchChallenge{Entries: []IndexedChallenge{{Probe: 1, Challenge: []byte("c")}}},
		&IdentifyBatchSignature{Entries: []IndexedSignature{{Probe: 1, Signature: []byte("s"), Nonce: []byte("n")}}},
		&IdentifyBatchResult{IDs: []string{"a", ""}},
	}
	for _, m := range seeds {
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unmarshal(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		re, err := Marshal(msg)
		if err != nil {
			t.Fatalf("accepted message failed to re-marshal: %v", err)
		}
		again, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-marshaled message failed to decode: %v", err)
		}
		if again.Type() != msg.Type() {
			t.Fatalf("type changed across round trip: %d -> %d", msg.Type(), again.Type())
		}
	})
}

// FuzzReadFrame feeds arbitrary streams to the frame reader.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, []byte("payload"))
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// An accepted frame must re-serialise to a readable frame.
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatalf("accepted payload failed to write: %v", err)
		}
		back, err := ReadFrame(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatal("payload changed across round trip")
		}
	})
}
