package wire

import (
	"bytes"
	"testing"

	"fuzzyid/internal/core"
	"fuzzyid/internal/sketch"
	"fuzzyid/internal/store"
)

// FuzzUnmarshal feeds arbitrary bytes to the message decoder: it must never
// panic, and anything it accepts must re-encode to a decodable message of
// the same type (decode/encode/decode stability).
func FuzzUnmarshal(f *testing.F) {
	// Seed with every message type plus structural edge cases.
	seeds := []Message{
		&EnrollRequest{ID: "alice", PublicKey: []byte{1, 2, 3}},
		&EnrollOK{ID: "x"},
		&VerifyRequest{ID: "y"},
		&IdentifyRequest{Normal: true},
		&Challenge{Challenge: []byte("c")},
		&ChallengeBatch{},
		&Signature{Signature: []byte("s"), Nonce: []byte("n")},
		&BatchSignature{Index: 3},
		&Accept{ID: "z"},
		&Reject{Reason: "r"},
		&RevokeRequest{ID: "w"},
		&ReEnrollRequest{ID: "w", PublicKey: []byte{7}},
		&ReEnrollRequest{ID: "t", PublicKey: []byte{8}, Tenant: "acme"},
		&IdentifyBatchRequest{},
		&IdentifyBatchChallenge{Entries: []IndexedChallenge{{Probe: 1, Challenge: []byte("c")}}},
		&IdentifyBatchSignature{Entries: []IndexedSignature{{Probe: 1, Signature: []byte("s"), Nonce: []byte("n")}}},
		&IdentifyBatchResult{IDs: []string{"a", ""}},
		&EnrollRequest{ID: "t", PublicKey: []byte{9}, Tenant: "acme"},
		&VerifyRequest{ID: "t", Tenant: "acme"},
		&TenantAdmin{Action: TenantActionCreate, Tenant: "acme"},
		&TenantAdmin{Action: TenantActionList},
		&TenantInfo{Tenants: []string{"default", "acme"}},
		&UnknownTenant{Tenant: "ghost"},
		&TenantAdmin{Action: TenantActionSetLimits, Tenant: "acme",
			Limits: &LimitsSpec{RateMilli: 1000, Burst: 5, MaxConcurrent: 4, Weight: 2}},
		&TenantAdmin{Action: TenantActionGetLimits, Tenant: "acme"},
		&TenantLimits{Tenant: "acme", Spec: LimitsSpec{Weight: 1}},
		&Overloaded{RetryAfterMS: 50, Reason: "scan"},
	}
	for _, m := range seeds {
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unmarshal(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		re, err := Marshal(msg)
		if err != nil {
			t.Fatalf("accepted message failed to re-marshal: %v", err)
		}
		again, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-marshaled message failed to decode: %v", err)
		}
		if again.Type() != msg.Type() {
			t.Fatalf("type changed across round trip: %d -> %d", msg.Type(), again.Type())
		}
	})
}

// fuzzHelper builds a small valid helper datum for codec seeds.
func fuzzHelper() *core.HelperData {
	return &core.HelperData{
		Sketch: &sketch.RobustSketch{
			Sketch: &sketch.Sketch{Movements: []int64{7, -3, 12}},
			Digest: [32]byte{4},
		},
		Seed: []byte("seed"),
	}
}

// FuzzDecodeRecord feeds arbitrary bytes to the store-record codec shared
// by the WAL, snapshots and the replication stream: it must never panic,
// reject trailing garbage, and anything accepted must re-encode to the
// identical bytes (canonical round trip).
func FuzzDecodeRecord(f *testing.F) {
	e := NewEncoder(256)
	EncodeRecord(e, &store.Record{ID: "alice", PublicKey: []byte{1, 2}, Helper: fuzzHelper()})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{RecordVersion})
	f.Add([]byte{0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		rec, err := DecodeRecord(d)
		if err != nil || d.Done() != nil {
			return // rejection is fine; panics are not
		}
		re := NewEncoder(len(data))
		EncodeRecord(re, rec)
		if !bytes.Equal(re.Bytes(), data) {
			t.Fatalf("record round trip not canonical: %x -> %x", data, re.Bytes())
		}
	})
}

// FuzzDecodeMutation feeds arbitrary bytes to the tenant-extended mutation
// codec — the payload format of the WAL and the replication stream. An
// accepted mutation must round-trip to the identical bytes, so the legacy
// (untenanted) and tenant-qualified encodings stay canonical and corrupt
// frames are rejected rather than reinterpreted.
func FuzzDecodeMutation(f *testing.F) {
	seed := func(m store.Mutation) {
		e := NewEncoder(256)
		if err := EncodeMutation(e, m); err != nil {
			f.Fatal(err)
		}
		f.Add(e.Bytes())
	}
	rec := &store.Record{ID: "bob", PublicKey: []byte{3}, Helper: fuzzHelper()}
	seed(store.InsertMutation(rec)) // legacy tag 1
	seed(store.DeleteMutation("bob"))
	tenantIns := store.InsertMutation(rec)
	tenantIns.Tenant = "acme"
	seed(tenantIns) // tenant-qualified tag 3
	tenantDel := store.DeleteMutation("bob")
	tenantDel.Tenant = "acme"
	seed(tenantDel)
	seed(store.Mutation{Op: store.OpTenantCreate, Tenant: "acme"})
	seed(store.Mutation{Op: store.OpTenantDrop, Tenant: "acme"})
	seed(store.ReplaceMutation(rec)) // tag 7, "" = default tenant
	tenantRepl := store.ReplaceMutation(rec)
	tenantRepl.Tenant = "acme"
	seed(tenantRepl)
	f.Add([]byte{})
	f.Add([]byte{3, 0, 0, 0, 0}) // tenant tag with empty tenant: must reject
	f.Add([]byte{99, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		m, err := DecodeMutation(d)
		if err != nil || d.Done() != nil {
			return
		}
		re := NewEncoder(len(data))
		if err := EncodeMutation(re, m); err != nil {
			t.Fatalf("accepted mutation failed to re-encode: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data) {
			t.Fatalf("mutation round trip not canonical: %x -> %x", data, re.Bytes())
		}
	})
}

// FuzzReadFrame feeds arbitrary streams to the frame reader.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, []byte("payload"))
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// An accepted frame must re-serialise to a readable frame.
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatalf("accepted payload failed to write: %v", err)
		}
		back, err := ReadFrame(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatal("payload changed across round trip")
		}
	})
}
