package wire

import (
	"errors"
	"testing"

	"fuzzyid/internal/cluster"
	"fuzzyid/internal/store"
)

func testClusterMap(version uint64) *cluster.Map {
	slots := make([]uint32, cluster.NumSlots)
	for i := range slots {
		slots[i] = uint32(i % 2)
	}
	return &cluster.Map{
		Version: version,
		Slots:   slots,
		Groups: []cluster.Group{
			{Primary: "10.0.0.1:7700", Replicas: []string{"10.0.0.2:7700"}},
			{Primary: "10.0.0.3:7700"},
		},
	}
}

func TestClusterMessagesRoundTrip(t *testing.T) {
	rec := &store.Record{ID: "dave", PublicKey: []byte("pk"), Helper: testHelper([]int64{7, -3})}
	m := testClusterMap(9)
	msgs := []Message{
		&ClusterMapRequest{},
		&ClusterMapInfo{Map: m},
		&WrongPartition{Map: m},
		&PartitionAdmin{Action: PartitionSplit, Slots: []uint32{0, 2, 4}, Target: "10.0.0.9:7700", TargetReplicas: []string{"10.0.0.10:7700"}},
		&PartitionAdmin{Action: PartitionMove, Slots: []uint32{63}, Target: "10.0.0.3:7700"},
		&PartitionIngest{First: true},
		&PartitionIngest{Tenant: "acme", Records: []*store.Record{rec}},
		&PartitionIngest{Done: true, NewMap: m},
		&PartitionOK{Version: 9},
	}
	for _, msg := range msgs {
		buf, err := Marshal(msg)
		if err != nil {
			t.Fatalf("marshal %T: %v", msg, err)
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("unmarshal %T: %v", msg, err)
		}
		if got.Type() != msg.Type() {
			t.Fatalf("round-tripped %T into %T", msg, got)
		}
	}

	// Field fidelity on the map-carrying message.
	buf, err := Marshal(&ClusterMapInfo{Map: m})
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := decoded.(*ClusterMapInfo).Map
	if got.Version != m.Version || len(got.Slots) != len(m.Slots) || len(got.Groups) != len(m.Groups) {
		t.Fatalf("decoded map (v%d, %d slots, %d groups), want (v%d, %d, %d)",
			got.Version, len(got.Slots), len(got.Groups), m.Version, len(m.Slots), len(m.Groups))
	}
	for i, s := range got.Slots {
		if s != m.Slots[i] {
			t.Fatalf("slot %d decoded as group %d, want %d", i, s, m.Slots[i])
		}
	}
	if got.Groups[0].Primary != m.Groups[0].Primary || got.Groups[0].Replicas[0] != m.Groups[0].Replicas[0] {
		t.Fatalf("group 0 decoded as %+v, want %+v", got.Groups[0], m.Groups[0])
	}
}

func TestClusterMapDecodeRejectsInvalid(t *testing.T) {
	// A slot pointing past the group list must not escape the codec.
	bad := testClusterMap(1)
	bad.Slots[0] = 7
	buf, err := Marshal(&ClusterMapInfo{Map: bad})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(buf); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("decoding a map with an out-of-range slot: %v, want ErrBadFrame", err)
	}

	// A Done chunk without its new map is malformed.
	e := NewEncoder(64)
	(&PartitionIngest{Done: true}).encode(e)
	frame := append([]byte{byte(TypePartitionIngest)}, e.Bytes()...)
	if _, err := Unmarshal(frame); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("decoding Done without NewMap: %v, want ErrBadFrame", err)
	}
}
