package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fuzzyid/internal/core"
	"fuzzyid/internal/numberline"
	"fuzzyid/internal/sketch"
)

func sampleHelper(t *testing.T) *core.HelperData {
	t.Helper()
	fe, err := core.New(core.Params{Line: numberline.PaperParams()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	x := make(numberline.Vector, 32)
	for i := range x {
		x[i] = fe.Line().Normalize(rng.Int63n(fe.Line().RingSize()) - fe.Line().RingSize()/2)
	}
	_, helper, err := fe.Gen(x)
	if err != nil {
		t.Fatal(err)
	}
	return helper
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal(%T): %v", m, err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal(%T): %v", m, err)
	}
	return got
}

func TestMessageRoundTrips(t *testing.T) {
	helper := sampleHelper(t)
	probe := &sketch.Sketch{Movements: []int64{-200, 0, 137, 200}}
	msgs := []Message{
		&EnrollRequest{ID: "alice", PublicKey: []byte{1, 2, 3}, Helper: helper},
		&EnrollOK{ID: "alice"},
		&VerifyRequest{ID: "bob"},
		&IdentifyRequest{Probe: probe},
		&IdentifyRequest{Normal: true},
		&Challenge{Helper: helper, Challenge: []byte("challenge-123")},
		&ChallengeBatch{Entries: []ChallengeEntry{
			{Helper: helper, Challenge: []byte("c0")},
			{Helper: helper, Challenge: []byte("c1")},
		}},
		&Signature{Signature: []byte("sig"), Nonce: []byte("nonce")},
		&BatchSignature{Index: 7, Signature: []byte("sig"), Nonce: []byte("a")},
		&Accept{ID: "alice"},
		&Reject{Reason: "no matching record"},
		&RevokeRequest{ID: "alice"},
		&IdentifyBatchRequest{Probes: []*sketch.Sketch{probe, probe}},
		&IdentifyBatchChallenge{Entries: []IndexedChallenge{
			{Probe: 0, Helper: helper, Challenge: []byte("c0")},
			{Probe: 3, Helper: helper, Challenge: []byte("c3")},
		}},
		&IdentifyBatchSignature{Entries: []IndexedSignature{
			{Probe: 3, Signature: []byte("sig"), Nonce: []byte("nonce")},
		}},
		&IdentifyBatchResult{IDs: []string{"alice", "", "carol"}},
		&TenantAdmin{Action: TenantActionCreate, Tenant: "acme"},
		&TenantAdmin{Action: TenantActionSetLimits, Tenant: "acme",
			Limits: &LimitsSpec{RateMilli: 1500, Burst: 10, MaxConcurrent: 8, Weight: 3}},
		&TenantAdmin{Action: TenantActionGetLimits, Tenant: "acme"},
		&TenantLimits{Tenant: "acme",
			Spec: LimitsSpec{RateMilli: 250, Weight: 1}, Overridden: true},
		&Overloaded{RetryAfterMS: 120, Reason: "rate"},
	}
	for _, m := range msgs {
		t.Run(reflect.TypeOf(m).Elem().Name(), func(t *testing.T) {
			got := roundTrip(t, m)
			if !reflect.DeepEqual(m, got) {
				t.Errorf("round trip mismatch:\n give %#v\n got  %#v", m, got)
			}
		})
	}
}

func TestHelperRoundTripPreservesRecovery(t *testing.T) {
	// The decoded helper must still work for Rep — digest, movements and
	// seed must survive byte-for-byte.
	fe, err := core.New(core.Params{Line: numberline.PaperParams()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	x := make(numberline.Vector, 32)
	for i := range x {
		x[i] = fe.Line().Normalize(rng.Int63n(fe.Line().RingSize()) - fe.Line().RingSize()/2)
	}
	key, helper, err := fe.Gen(x)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, &Challenge{Helper: helper, Challenge: []byte("c")})
	decoded, ok := got.(*Challenge)
	if !ok {
		t.Fatalf("wrong type %T", got)
	}
	key2, err := fe.Rep(x, decoded.Helper)
	if err != nil {
		t.Fatalf("Rep with decoded helper: %v", err)
	}
	if !bytes.Equal(key, key2) {
		t.Fatal("decoded helper produced a different key")
	}
}

func TestNilHelperRoundTrip(t *testing.T) {
	got := roundTrip(t, &Challenge{Helper: nil, Challenge: []byte("c")})
	if got.(*Challenge).Helper != nil {
		t.Error("nil helper did not survive round trip")
	}
}

func TestUnmarshalRejectsUnknownType(t *testing.T) {
	if _, err := Unmarshal([]byte{0xEE}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("unknown tag err = %v", err)
	}
	if _, err := Unmarshal(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty buffer err = %v", err)
	}
}

func TestUnmarshalRejectsTrailingGarbage(t *testing.T) {
	buf, err := Marshal(&Accept{ID: "x"})
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 0xAA)
	if _, err := Unmarshal(buf); !errors.Is(err, ErrBadFrame) {
		t.Errorf("trailing bytes err = %v", err)
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	helper := sampleHelper(t)
	buf, err := Marshal(&EnrollRequest{ID: "alice", PublicKey: []byte("pk"), Helper: helper})
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly, never panic.
	for cut := 0; cut < len(buf); cut++ {
		if _, err := Unmarshal(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecoderLimits(t *testing.T) {
	// A length prefix beyond the cap must be rejected before allocation.
	e := NewEncoder(16)
	e.Uint32(MaxBytesLen + 1)
	d := NewDecoder(e.Bytes())
	if _, err := d.VarBytes(MaxBytesLen); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized VarBytes err = %v", err)
	}
	e2 := NewEncoder(16)
	e2.Uint32(MaxVectorLen + 1)
	d2 := NewDecoder(e2.Bytes())
	if _, err := d2.Int64Slice(MaxVectorLen); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized Int64Slice err = %v", err)
	}
	// Claimed length larger than remaining bytes.
	e3 := NewEncoder(16)
	e3.Uint32(8)
	e3.Byte(1)
	d3 := NewDecoder(e3.Bytes())
	if _, err := d3.VarBytes(MaxBytesLen); !errors.Is(err, ErrTruncated) {
		t.Errorf("short VarBytes err = %v", err)
	}
}

func TestDecoderBool(t *testing.T) {
	d := NewDecoder([]byte{2})
	if _, err := d.Bool(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bool byte 2 err = %v", err)
	}
}

func TestPrimitiveRoundTripQuick(t *testing.T) {
	f := func(u64 uint64, i64 int64, b bool, blob []byte, s string, ints []int64) bool {
		if len(blob) > MaxBytesLen || len(s) > MaxBytesLen || len(ints) > MaxVectorLen {
			return true
		}
		e := NewEncoder(64)
		e.Uint64(u64)
		e.Int64(i64)
		e.Bool(b)
		e.VarBytes(blob)
		e.String(s)
		e.Int64Slice(ints)
		d := NewDecoder(e.Bytes())
		gu, err := d.Uint64()
		if err != nil || gu != u64 {
			return false
		}
		gi, err := d.Int64()
		if err != nil || gi != i64 {
			return false
		}
		gb, err := d.Bool()
		if err != nil || gb != b {
			return false
		}
		gblob, err := d.VarBytes(MaxBytesLen)
		if err != nil || !bytes.Equal(gblob, blob) {
			return false
		}
		gs, err := d.String(MaxBytesLen)
		if err != nil || gs != s {
			return false
		}
		gints, err := d.Int64Slice(MaxVectorLen)
		if err != nil || len(gints) != len(ints) {
			return false
		}
		for i := range ints {
			if gints[i] != ints[i] {
				return false
			}
		}
		return d.Done() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("first"), {}, []byte("third message")}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame = %q, want %q", got, want)
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("exhausted stream err = %v", err)
	}
}

func TestReadFrameRejectsOversizedHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized frame err = %v", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(short)); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated body err = %v", err)
	}
}

func TestSendReceive(t *testing.T) {
	var buf bytes.Buffer
	want := &Accept{ID: "alice"}
	if err := Send(&buf, want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := Receive(&buf)
	if err != nil {
		t.Fatalf("Receive: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("Receive = %#v", got)
	}
}

func TestMarshalNil(t *testing.T) {
	if _, err := Marshal(nil); err == nil {
		t.Error("Marshal(nil) succeeded")
	}
}

func TestChallengeBatchLimit(t *testing.T) {
	e := NewEncoder(16)
	e.Byte(byte(TypeChallengeBatch))
	e.Uint32(MaxBatchLen + 1)
	if _, err := Unmarshal(e.Bytes()); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized batch err = %v", err)
	}
}
