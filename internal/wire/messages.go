package wire

import (
	"errors"
	"fmt"
	"io"

	"fuzzyid/internal/core"
	"fuzzyid/internal/sketch"
)

// MsgType tags every protocol message on the wire.
type MsgType byte

// Message type tags. The values are part of the wire contract; append only.
const (
	// TypeEnrollRequest carries (ID, pk, P) from the device to the server.
	TypeEnrollRequest MsgType = iota + 1
	// TypeEnrollOK acknowledges enrollment.
	TypeEnrollOK
	// TypeVerifyRequest opens verification mode with a claimed identity.
	TypeVerifyRequest
	// TypeIdentifyRequest opens identification mode with a probe sketch s'.
	TypeIdentifyRequest
	// TypeChallenge carries (P, c) from the server to the device.
	TypeChallenge
	// TypeChallengeBatch carries all (P_i, c_i) for the normal approach.
	TypeChallengeBatch
	// TypeSignature carries (sigma, a) from the device to the server.
	TypeSignature
	// TypeBatchSignature carries (index, sigma, a) for the normal approach.
	TypeBatchSignature
	// TypeAccept reports a successful protocol run and the identified ID.
	TypeAccept
	// TypeReject reports a failed protocol run.
	TypeReject
	// TypeRevokeRequest asks to revoke an enrollment after proving
	// possession of the biometric (challenge-response follows).
	TypeRevokeRequest
	// TypeIdentifyBatchRequest opens a batched identification run with
	// several probe sketches at once.
	TypeIdentifyBatchRequest
	// TypeIdentifyBatchChallenge carries (index, P, c) for every probe the
	// server matched.
	TypeIdentifyBatchChallenge
	// TypeIdentifyBatchSignature carries (index, sigma, a) for every
	// challenge the device could answer.
	TypeIdentifyBatchSignature
	// TypeIdentifyBatchResult reports the per-probe verdicts (the
	// identified ID, or "" for probes that failed).
	TypeIdentifyBatchResult
	// TypeStatsRequest asks the server for its telemetry snapshot.
	TypeStatsRequest
	// TypeStatsResponse carries the telemetry snapshot as JSON.
	TypeStatsResponse
	// TypeNotPrimary rejects a mutation on a read-only replica, naming the
	// primary the client should redirect to.
	TypeNotPrimary
	// TypeReplSubscribe opens a replication stream from a given offset.
	TypeReplSubscribe
	// TypeReplSnapshot carries one chunk of a snapshot bootstrap.
	TypeReplSnapshot
	// TypeReplFrame ships one committed mutation at its log offset.
	TypeReplFrame
	// TypeReplAck reports the follower's applied offset back to the primary.
	TypeReplAck
	// TypeReplHeartbeat keeps an idle replication stream alive and carries
	// the primary's latest offset.
	TypeReplHeartbeat
	// TypeReplStatus asks a server for its replication role and progress.
	TypeReplStatus
	// TypeReplStatusInfo answers a ReplStatus probe.
	TypeReplStatusInfo
	// TypeUnknownTenant rejects an operation naming a tenant namespace the
	// server does not host (see tenant.go).
	TypeUnknownTenant
	// TypeTenantAdmin opens a tenant administration session: list, create
	// or drop a namespace (see tenant.go).
	TypeTenantAdmin
	// TypeTenantInfo answers a tenant list request with the hosted
	// namespace names (see tenant.go).
	TypeTenantInfo
	// TypeOverloaded sheds a session the admission controller refused to
	// run, carrying a retry-after hint (see tenant.go).
	TypeOverloaded
	// TypeTenantLimits answers a get-limits tenant-admin request with the
	// namespace's effective QoS envelope (see tenant.go).
	TypeTenantLimits
	// TypeReEnrollRequest asks to replace an enrollment's template (fresh
	// pk and helper data) after proving possession of the currently
	// enrolled biometric (challenge-response follows).
	TypeReEnrollRequest
	// TypeClusterMapRequest asks a cluster node for its current versioned
	// cluster map (see cluster.go).
	TypeClusterMapRequest
	// TypeClusterMapInfo answers a ClusterMapRequest with the node's
	// current cluster map (see cluster.go).
	TypeClusterMapInfo
	// TypeWrongPartition refuses a keyed operation routed to a node whose
	// group does not own the key's slot, carrying the refusing node's map
	// so the client can re-route in one round (see cluster.go).
	TypeWrongPartition
	// TypePartitionAdmin asks a partition primary to split or move a set
	// of its slots to a target primary via record handoff (see
	// cluster.go).
	TypePartitionAdmin
	// TypePartitionIngest streams one chunk of a partition handoff from
	// the source primary to the target (see cluster.go).
	TypePartitionIngest
	// TypePartitionOK acknowledges a completed partition admin operation
	// or ingest stream, carrying the resulting map version (see
	// cluster.go).
	TypePartitionOK
)

// MaxIdentifyBatch bounds the probes of one batched identification run.
const MaxIdentifyBatch = 1 << 10

// Message is implemented by every protocol message.
type Message interface {
	// Type returns the wire tag.
	Type() MsgType
	// encode appends the message body (without tag).
	encode(e *Encoder)
	// decode parses the message body (without tag).
	decode(d *Decoder) error
}

// decodeTenantTail reads a request's trailing tenant field ("" selects the
// default tenant). The field is mandatory on the live wire — truncated
// frames must stay rejected — while *stored* mutation streams get their
// version tolerance from the mutation codec's tag space (repl.go), which is
// where pre-tenant bytes actually survive.
func decodeTenantTail(d *Decoder) (string, error) {
	return d.String(MaxTenantLen)
}

// EnrollRequest registers a user: the UserEnro message (ID, pk, P).
type EnrollRequest struct {
	// ID is the identity being enrolled.
	ID string
	// PublicKey is the serialized signature-verification key pk.
	PublicKey []byte
	// Helper is the public helper data P = (s, r).
	Helper *core.HelperData
	// Tenant is the namespace to enroll into ("" = default tenant).
	Tenant string
}

// Type implements Message.
func (*EnrollRequest) Type() MsgType { return TypeEnrollRequest }

func (m *EnrollRequest) encode(e *Encoder) {
	e.String(m.ID)
	e.VarBytes(m.PublicKey)
	encodeHelper(e, m.Helper)
	e.String(m.Tenant)
}

func (m *EnrollRequest) decode(d *Decoder) error {
	var err error
	if m.ID, err = d.String(MaxBytesLen); err != nil {
		return err
	}
	if m.PublicKey, err = d.VarBytes(MaxBytesLen); err != nil {
		return err
	}
	if m.Helper, err = decodeHelper(d); err != nil {
		return err
	}
	m.Tenant, err = decodeTenantTail(d)
	return err
}

// EnrollOK acknowledges an enrollment.
type EnrollOK struct {
	// ID echoes the enrolled identity.
	ID string
}

// Type implements Message.
func (*EnrollOK) Type() MsgType { return TypeEnrollOK }

func (m *EnrollOK) encode(e *Encoder) { e.String(m.ID) }

func (m *EnrollOK) decode(d *Decoder) error {
	var err error
	m.ID, err = d.String(MaxBytesLen)
	return err
}

// VerifyRequest opens a verification-mode run with a claimed identity.
type VerifyRequest struct {
	// ID is the claimed identity to verify against.
	ID string
	// Tenant is the namespace the identity lives in ("" = default tenant).
	Tenant string
}

// Type implements Message.
func (*VerifyRequest) Type() MsgType { return TypeVerifyRequest }

func (m *VerifyRequest) encode(e *Encoder) {
	e.String(m.ID)
	e.String(m.Tenant)
}

func (m *VerifyRequest) decode(d *Decoder) error {
	var err error
	if m.ID, err = d.String(MaxBytesLen); err != nil {
		return err
	}
	m.Tenant, err = decodeTenantTail(d)
	return err
}

// IdentifyRequest opens an identification-mode run: the probe sketch s'.
// Normal is true when the client asks for the O(N) normal approach of
// Fig. 2 instead of the proposed sketch-search protocol (used by the
// comparison experiments; Fig. 2's request carries no sketch).
type IdentifyRequest struct {
	// Probe is the plain probe sketch s' (nil in a normal-approach run).
	Probe *sketch.Sketch
	// Normal selects the O(N) normal approach of Fig. 2.
	Normal bool
	// Tenant is the namespace to search ("" = default tenant).
	Tenant string
}

// Type implements Message.
func (*IdentifyRequest) Type() MsgType { return TypeIdentifyRequest }

func (m *IdentifyRequest) encode(e *Encoder) {
	e.Bool(m.Normal)
	if m.Probe == nil {
		e.Int64Slice(nil)
	} else {
		e.Int64Slice(m.Probe.Movements)
	}
	e.String(m.Tenant)
}

func (m *IdentifyRequest) decode(d *Decoder) error {
	var err error
	if m.Normal, err = d.Bool(); err != nil {
		return err
	}
	movements, err := d.Int64Slice(MaxVectorLen)
	if err != nil {
		return err
	}
	if len(movements) == 0 {
		m.Probe = nil
	} else {
		m.Probe = &sketch.Sketch{Movements: movements}
	}
	m.Tenant, err = decodeTenantTail(d)
	return err
}

// Challenge carries the helper data and a fresh challenge (P, c) to the
// device.
type Challenge struct {
	// Helper is the matched record's helper data P.
	Helper *core.HelperData
	// Challenge is the fresh random challenge c.
	Challenge []byte
}

// Type implements Message.
func (*Challenge) Type() MsgType { return TypeChallenge }

func (m *Challenge) encode(e *Encoder) {
	encodeHelper(e, m.Helper)
	e.VarBytes(m.Challenge)
}

func (m *Challenge) decode(d *Decoder) error {
	var err error
	if m.Helper, err = decodeHelper(d); err != nil {
		return err
	}
	m.Challenge, err = d.VarBytes(MaxBytesLen)
	return err
}

// ChallengeEntry is one (P_i, c_i) pair of the normal approach.
type ChallengeEntry struct {
	// Helper is one enrolled helper datum P_i.
	Helper *core.HelperData
	// Challenge is the challenge c_i paired with it.
	Challenge []byte
}

// ChallengeBatch carries every enrolled helper datum with its challenge —
// the server side of Fig. 2, where the device must try Rep against each.
type ChallengeBatch struct {
	// Entries holds one (P_i, c_i) pair per enrolled record.
	Entries []ChallengeEntry
}

// Type implements Message.
func (*ChallengeBatch) Type() MsgType { return TypeChallengeBatch }

func (m *ChallengeBatch) encode(e *Encoder) {
	e.Uint32(uint32(len(m.Entries)))
	for i := range m.Entries {
		encodeHelper(e, m.Entries[i].Helper)
		e.VarBytes(m.Entries[i].Challenge)
	}
}

func (m *ChallengeBatch) decode(d *Decoder) error {
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if int(n) > MaxBatchLen {
		return fmt.Errorf("%w: batch %d", ErrTooLarge, n)
	}
	m.Entries = make([]ChallengeEntry, n)
	for i := range m.Entries {
		if m.Entries[i].Helper, err = decodeHelper(d); err != nil {
			return err
		}
		if m.Entries[i].Challenge, err = d.VarBytes(MaxBytesLen); err != nil {
			return err
		}
	}
	return nil
}

// Signature carries the device response (sigma, a).
type Signature struct {
	// Signature is sigma, the signature over (c, a).
	Signature []byte
	// Nonce is the device-chosen nonce a.
	Nonce []byte
}

// Type implements Message.
func (*Signature) Type() MsgType { return TypeSignature }

func (m *Signature) encode(e *Encoder) {
	e.VarBytes(m.Signature)
	e.VarBytes(m.Nonce)
}

func (m *Signature) decode(d *Decoder) error {
	var err error
	if m.Signature, err = d.VarBytes(MaxBytesLen); err != nil {
		return err
	}
	m.Nonce, err = d.VarBytes(MaxBytesLen)
	return err
}

// BatchSignature is the device response in the normal approach: which batch
// entry succeeded, plus (sigma, a) for that entry's challenge.
type BatchSignature struct {
	// Index is the batch entry whose challenge was answered.
	Index uint32
	// Signature is sigma for that entry's challenge.
	Signature []byte
	// Nonce is the device-chosen nonce a.
	Nonce []byte
}

// Type implements Message.
func (*BatchSignature) Type() MsgType { return TypeBatchSignature }

func (m *BatchSignature) encode(e *Encoder) {
	e.Uint32(m.Index)
	e.VarBytes(m.Signature)
	e.VarBytes(m.Nonce)
}

func (m *BatchSignature) decode(d *Decoder) error {
	var err error
	if m.Index, err = d.Uint32(); err != nil {
		return err
	}
	if m.Signature, err = d.VarBytes(MaxBytesLen); err != nil {
		return err
	}
	m.Nonce, err = d.VarBytes(MaxBytesLen)
	return err
}

// Accept reports protocol success with the identified/verified identity.
type Accept struct {
	// ID is the identified or verified identity.
	ID string
}

// Type implements Message.
func (*Accept) Type() MsgType { return TypeAccept }

func (m *Accept) encode(e *Encoder) { e.String(m.ID) }

func (m *Accept) decode(d *Decoder) error {
	var err error
	m.ID, err = d.String(MaxBytesLen)
	return err
}

// RevokeRequest opens a revocation run for a claimed identity. The server
// answers with a Challenge; only a device that can reproduce the enrolled
// key may complete the revocation (biometric-authenticated deletion).
type RevokeRequest struct {
	// ID is the identity whose enrollment should be revoked.
	ID string
	// Tenant is the namespace the identity lives in ("" = default tenant).
	Tenant string
}

// Type implements Message.
func (*RevokeRequest) Type() MsgType { return TypeRevokeRequest }

func (m *RevokeRequest) encode(e *Encoder) {
	e.String(m.ID)
	e.String(m.Tenant)
}

func (m *RevokeRequest) decode(d *Decoder) error {
	var err error
	if m.ID, err = d.String(MaxBytesLen); err != nil {
		return err
	}
	m.Tenant, err = decodeTenantTail(d)
	return err
}

// ReEnrollRequest opens a re-enrollment run: replace the identity's
// enrolled template with a fresh (pk, P) pair generated from a new reading.
// The server answers with a Challenge built from the *currently enrolled*
// helper data; only a device that can still reproduce the old key — i.e.
// that possesses the enrolled biometric — may install the replacement
// (biometric-authenticated template rotation, the online answer to
// template aging).
type ReEnrollRequest struct {
	// ID is the identity whose template should be replaced.
	ID string
	// PublicKey is the replacement signature-verification key pk'.
	PublicKey []byte
	// Helper is the replacement helper data P' = (s', r').
	Helper *core.HelperData
	// Tenant is the namespace the identity lives in ("" = default tenant).
	Tenant string
}

// Type implements Message.
func (*ReEnrollRequest) Type() MsgType { return TypeReEnrollRequest }

func (m *ReEnrollRequest) encode(e *Encoder) {
	e.String(m.ID)
	e.VarBytes(m.PublicKey)
	encodeHelper(e, m.Helper)
	e.String(m.Tenant)
}

func (m *ReEnrollRequest) decode(d *Decoder) error {
	var err error
	if m.ID, err = d.String(MaxBytesLen); err != nil {
		return err
	}
	if m.PublicKey, err = d.VarBytes(MaxBytesLen); err != nil {
		return err
	}
	if m.Helper, err = decodeHelper(d); err != nil {
		return err
	}
	m.Tenant, err = decodeTenantTail(d)
	return err
}

// IdentifyBatchRequest opens the batched identification protocol: the
// device ships several probe sketches in one session, amortising framing,
// database locks and residue computation across them.
type IdentifyBatchRequest struct {
	// Probes are the probe sketches, one per reading.
	Probes []*sketch.Sketch
	// Tenant is the namespace to search ("" = default tenant).
	Tenant string
}

// Type implements Message.
func (*IdentifyBatchRequest) Type() MsgType { return TypeIdentifyBatchRequest }

func (m *IdentifyBatchRequest) encode(e *Encoder) {
	e.Uint32(uint32(len(m.Probes)))
	for _, p := range m.Probes {
		if p == nil {
			e.Int64Slice(nil)
			continue
		}
		e.Int64Slice(p.Movements)
	}
	e.String(m.Tenant)
}

func (m *IdentifyBatchRequest) decode(d *Decoder) error {
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if int(n) > MaxIdentifyBatch {
		return fmt.Errorf("%w: identify batch %d", ErrTooLarge, n)
	}
	m.Probes = make([]*sketch.Sketch, n)
	for i := range m.Probes {
		movements, err := d.Int64Slice(MaxVectorLen)
		if err != nil {
			return err
		}
		if len(movements) > 0 {
			m.Probes[i] = &sketch.Sketch{Movements: movements}
		}
	}
	m.Tenant, err = decodeTenantTail(d)
	return err
}

// IndexedChallenge is one (probe index, P, c) tuple of a batched
// identification run.
type IndexedChallenge struct {
	// Probe indexes the request probe this challenge answers.
	Probe uint32
	// Helper is the matched record's helper data.
	Helper *core.HelperData
	// Challenge is the fresh challenge for that record.
	Challenge []byte
}

// IdentifyBatchChallenge carries a challenge for every matched probe of a
// batched identification request; unmatched probes have no entry.
type IdentifyBatchChallenge struct {
	// Entries holds one challenge per matched probe.
	Entries []IndexedChallenge
}

// Type implements Message.
func (*IdentifyBatchChallenge) Type() MsgType { return TypeIdentifyBatchChallenge }

func (m *IdentifyBatchChallenge) encode(e *Encoder) {
	e.Uint32(uint32(len(m.Entries)))
	for i := range m.Entries {
		e.Uint32(m.Entries[i].Probe)
		encodeHelper(e, m.Entries[i].Helper)
		e.VarBytes(m.Entries[i].Challenge)
	}
}

func (m *IdentifyBatchChallenge) decode(d *Decoder) error {
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if int(n) > MaxIdentifyBatch {
		return fmt.Errorf("%w: identify batch %d", ErrTooLarge, n)
	}
	m.Entries = make([]IndexedChallenge, n)
	for i := range m.Entries {
		if m.Entries[i].Probe, err = d.Uint32(); err != nil {
			return err
		}
		if m.Entries[i].Helper, err = decodeHelper(d); err != nil {
			return err
		}
		if m.Entries[i].Challenge, err = d.VarBytes(MaxBytesLen); err != nil {
			return err
		}
	}
	return nil
}

// IndexedSignature is one (probe index, sigma, a) tuple of a batched
// identification run.
type IndexedSignature struct {
	// Probe indexes the request probe this answer belongs to.
	Probe uint32
	// Signature is sigma for that probe's challenge.
	Signature []byte
	// Nonce is the device-chosen nonce a.
	Nonce []byte
}

// IdentifyBatchSignature carries the device's answers to a batched
// challenge; challenges whose key could not be reproduced have no entry.
type IdentifyBatchSignature struct {
	// Entries holds one answer per challenge the device could satisfy.
	Entries []IndexedSignature
}

// Type implements Message.
func (*IdentifyBatchSignature) Type() MsgType { return TypeIdentifyBatchSignature }

func (m *IdentifyBatchSignature) encode(e *Encoder) {
	e.Uint32(uint32(len(m.Entries)))
	for i := range m.Entries {
		e.Uint32(m.Entries[i].Probe)
		e.VarBytes(m.Entries[i].Signature)
		e.VarBytes(m.Entries[i].Nonce)
	}
}

func (m *IdentifyBatchSignature) decode(d *Decoder) error {
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if int(n) > MaxIdentifyBatch {
		return fmt.Errorf("%w: identify batch %d", ErrTooLarge, n)
	}
	m.Entries = make([]IndexedSignature, n)
	for i := range m.Entries {
		if m.Entries[i].Probe, err = d.Uint32(); err != nil {
			return err
		}
		if m.Entries[i].Signature, err = d.VarBytes(MaxBytesLen); err != nil {
			return err
		}
		if m.Entries[i].Nonce, err = d.VarBytes(MaxBytesLen); err != nil {
			return err
		}
	}
	return nil
}

// IdentifyBatchResult closes a batched identification run: IDs is aligned
// with the request probes, with "" for probes that were not identified.
type IdentifyBatchResult struct {
	// IDs is aligned with the request probes; "" marks unidentified ones.
	IDs []string
}

// Type implements Message.
func (*IdentifyBatchResult) Type() MsgType { return TypeIdentifyBatchResult }

func (m *IdentifyBatchResult) encode(e *Encoder) {
	e.Uint32(uint32(len(m.IDs)))
	for _, id := range m.IDs {
		e.String(id)
	}
}

func (m *IdentifyBatchResult) decode(d *Decoder) error {
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if int(n) > MaxIdentifyBatch {
		return fmt.Errorf("%w: identify batch %d", ErrTooLarge, n)
	}
	m.IDs = make([]string, n)
	for i := range m.IDs {
		if m.IDs[i], err = d.String(MaxBytesLen); err != nil {
			return err
		}
	}
	return nil
}

// StatsRequest opens a stats session: the client asks the server for its
// current telemetry snapshot (operational monitoring, not part of the
// paper's protocols). Servers without telemetry answer with a Reject.
type StatsRequest struct{}

// Type implements Message.
func (*StatsRequest) Type() MsgType { return TypeStatsRequest }

func (m *StatsRequest) encode(e *Encoder) {}

func (m *StatsRequest) decode(d *Decoder) error { return nil }

// StatsResponse carries the server's telemetry snapshot. The payload is the
// JSON document of internal/telemetry.(*Registry).MarshalJSON — the same
// bytes the -stats-addr HTTP endpoint serves — so the wire stays stable as
// metrics are added (JSON is self-describing; new keys are ignored by old
// clients).
type StatsResponse struct {
	// JSON is the telemetry snapshot document.
	JSON []byte
}

// Type implements Message.
func (*StatsResponse) Type() MsgType { return TypeStatsResponse }

func (m *StatsResponse) encode(e *Encoder) { e.VarBytes(m.JSON) }

func (m *StatsResponse) decode(d *Decoder) error {
	var err error
	m.JSON, err = d.VarBytes(MaxBytesLen)
	return err
}

// Reject reports protocol failure (the ⊥ output).
type Reject struct {
	// Reason is a human-readable explanation of the rejection.
	Reason string
}

// Type implements Message.
func (*Reject) Type() MsgType { return TypeReject }

func (m *Reject) encode(e *Encoder) { e.String(m.Reason) }

func (m *Reject) decode(d *Decoder) error {
	var err error
	m.Reason, err = d.String(MaxBytesLen)
	return err
}

// Marshal encodes a message with its type tag.
func Marshal(m Message) ([]byte, error) {
	if m == nil {
		return nil, errors.New("wire: marshal nil message")
	}
	e := NewEncoder(256)
	e.Byte(byte(m.Type()))
	m.encode(e)
	return e.Bytes(), nil
}

// Unmarshal decodes a tagged message.
func Unmarshal(buf []byte) (Message, error) {
	d := NewDecoder(buf)
	tag, err := d.Byte()
	if err != nil {
		return nil, err
	}
	m, err := newMessage(MsgType(tag))
	if err != nil {
		return nil, err
	}
	if err := m.decode(d); err != nil {
		return nil, fmt.Errorf("wire: decode %T: %w", m, err)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return m, nil
}

// Send marshals m and writes it as one frame.
func Send(w io.Writer, m Message) error {
	buf, err := Marshal(m)
	if err != nil {
		return err
	}
	return WriteFrame(w, buf)
}

// Receive reads one frame and unmarshals the message.
func Receive(r io.Reader) (Message, error) {
	buf, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return Unmarshal(buf)
}

func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeEnrollRequest:
		return &EnrollRequest{}, nil
	case TypeEnrollOK:
		return &EnrollOK{}, nil
	case TypeVerifyRequest:
		return &VerifyRequest{}, nil
	case TypeIdentifyRequest:
		return &IdentifyRequest{}, nil
	case TypeChallenge:
		return &Challenge{}, nil
	case TypeChallengeBatch:
		return &ChallengeBatch{}, nil
	case TypeSignature:
		return &Signature{}, nil
	case TypeBatchSignature:
		return &BatchSignature{}, nil
	case TypeAccept:
		return &Accept{}, nil
	case TypeReject:
		return &Reject{}, nil
	case TypeRevokeRequest:
		return &RevokeRequest{}, nil
	case TypeIdentifyBatchRequest:
		return &IdentifyBatchRequest{}, nil
	case TypeIdentifyBatchChallenge:
		return &IdentifyBatchChallenge{}, nil
	case TypeIdentifyBatchSignature:
		return &IdentifyBatchSignature{}, nil
	case TypeIdentifyBatchResult:
		return &IdentifyBatchResult{}, nil
	case TypeStatsRequest:
		return &StatsRequest{}, nil
	case TypeStatsResponse:
		return &StatsResponse{}, nil
	case TypeNotPrimary:
		return &NotPrimary{}, nil
	case TypeReplSubscribe:
		return &ReplSubscribe{}, nil
	case TypeReplSnapshot:
		return &ReplSnapshot{}, nil
	case TypeReplFrame:
		return &ReplFrame{}, nil
	case TypeReplAck:
		return &ReplAck{}, nil
	case TypeReplHeartbeat:
		return &ReplHeartbeat{}, nil
	case TypeReplStatus:
		return &ReplStatus{}, nil
	case TypeReplStatusInfo:
		return &ReplStatusInfo{}, nil
	case TypeUnknownTenant:
		return &UnknownTenant{}, nil
	case TypeTenantAdmin:
		return &TenantAdmin{}, nil
	case TypeTenantInfo:
		return &TenantInfo{}, nil
	case TypeOverloaded:
		return &Overloaded{}, nil
	case TypeTenantLimits:
		return &TenantLimits{}, nil
	case TypeReEnrollRequest:
		return &ReEnrollRequest{}, nil
	case TypeClusterMapRequest:
		return &ClusterMapRequest{}, nil
	case TypeClusterMapInfo:
		return &ClusterMapInfo{}, nil
	case TypeWrongPartition:
		return &WrongPartition{}, nil
	case TypePartitionAdmin:
		return &PartitionAdmin{}, nil
	case TypePartitionIngest:
		return &PartitionIngest{}, nil
	case TypePartitionOK:
		return &PartitionOK{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown message type %d", ErrBadFrame, t)
	}
}

// encodeHelper writes a HelperData; see EncodeHelper (record.go), which is
// the exported form shared with the on-disk record codec.
func encodeHelper(e *Encoder, h *core.HelperData) { EncodeHelper(e, h) }

func decodeHelper(d *Decoder) (*core.HelperData, error) {
	movements, err := d.Int64Slice(MaxVectorLen)
	if err != nil {
		return nil, err
	}
	digest, err := d.Bytes32()
	if err != nil {
		return nil, err
	}
	seed, err := d.VarBytes(MaxBytesLen)
	if err != nil {
		return nil, err
	}
	if len(movements) == 0 && len(seed) == 0 {
		return nil, nil
	}
	return &core.HelperData{
		Sketch: &sketch.RobustSketch{
			Sketch: &sketch.Sketch{Movements: movements},
			Digest: digest,
		},
		Seed: seed,
	}, nil
}
