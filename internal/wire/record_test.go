package wire

import (
	"errors"
	"testing"

	"fuzzyid/internal/core"
	"fuzzyid/internal/sketch"
	"fuzzyid/internal/store"
)

func testHelper(movements []int64) *core.HelperData {
	return &core.HelperData{
		Sketch: &sketch.RobustSketch{
			Sketch: &sketch.Sketch{Movements: movements},
			Digest: [32]byte{1, 2, 3},
		},
		Seed: []byte("seed-bytes"),
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := &store.Record{
		ID:        "alice",
		PublicKey: []byte("public-key-material"),
		Helper:    testHelper([]int64{-3, 0, 7, 12345}),
	}
	e := NewEncoder(64)
	EncodeRecord(e, rec)
	d := NewDecoder(e.Bytes())
	got, err := DecodeRecord(d)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
	if got.ID != rec.ID || string(got.PublicKey) != string(rec.PublicKey) {
		t.Fatalf("decoded (%q, %q), want (%q, %q)", got.ID, got.PublicKey, rec.ID, rec.PublicKey)
	}
	if len(got.Helper.Sketch.Sketch.Movements) != 4 || got.Helper.Sketch.Sketch.Movements[3] != 12345 {
		t.Fatalf("movements = %v", got.Helper.Sketch.Sketch.Movements)
	}
	if got.Helper.Sketch.Digest != rec.Helper.Sketch.Digest {
		t.Fatal("digest did not round-trip")
	}
	if string(got.Helper.Seed) != string(rec.Helper.Seed) {
		t.Fatal("seed did not round-trip")
	}
}

func TestRecordVersionMismatch(t *testing.T) {
	rec := &store.Record{ID: "x", PublicKey: []byte("pk"), Helper: testHelper([]int64{1})}
	e := NewEncoder(64)
	EncodeRecord(e, rec)
	buf := e.Bytes()
	buf[0] = RecordVersion + 1
	if _, err := DecodeRecord(NewDecoder(buf)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("future version err = %v, want ErrBadFrame", err)
	}
}

func TestRecordDecodeTruncated(t *testing.T) {
	rec := &store.Record{ID: "trunc", PublicKey: []byte("pk"), Helper: testHelper([]int64{1, 2, 3})}
	e := NewEncoder(64)
	EncodeRecord(e, rec)
	full := e.Bytes()
	for n := 0; n < len(full); n++ {
		if _, err := DecodeRecord(NewDecoder(full[:n])); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", n, len(full))
		}
	}
}

func TestRecordRejectsMissingHelper(t *testing.T) {
	// The all-empty helper encoding decodes to nil, which is not a valid
	// stored record.
	e := NewEncoder(64)
	e.Byte(RecordVersion)
	e.String("no-helper")
	e.VarBytes([]byte("pk"))
	EncodeHelper(e, nil)
	if _, err := DecodeRecord(NewDecoder(e.Bytes())); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("nil-helper record err = %v, want ErrBadFrame", err)
	}
}

func TestHelperExportedRoundTrip(t *testing.T) {
	h := testHelper([]int64{9, -9})
	e := NewEncoder(64)
	EncodeHelper(e, h)
	got, err := DecodeHelper(NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Sketch.Sketch.Movements[1] != -9 {
		t.Fatalf("helper round trip = %+v", got)
	}
	// Nil encodes to the canonical empty form and decodes back to nil.
	e2 := NewEncoder(64)
	EncodeHelper(e2, nil)
	got2, err := DecodeHelper(NewDecoder(e2.Bytes()))
	if err != nil || got2 != nil {
		t.Fatalf("nil helper round trip = (%v, %v)", got2, err)
	}
}
