package wire

// This file carries the cluster-routing messages: the versioned cluster map
// (fetched explicitly or piggybacked on a WrongPartition redirect) and the
// partition split/move handoff stream. All additions are append-only — the
// tags extend the MsgType enum past TypeReEnrollRequest, so pre-cluster
// peers simply reject them as unknown.

import (
	"fmt"

	"fuzzyid/internal/cluster"
	"fuzzyid/internal/store"
)

// Limits for cluster message decoding.
const (
	// MaxGroupMembers bounds one group's replica list in an encoded map.
	MaxGroupMembers = 64
	// MaxIngestChunk bounds the records of one PartitionIngest chunk.
	MaxIngestChunk = 1 << 10
)

// Partition admin actions.
const (
	// PartitionSplit moves slots from the source group to a target primary
	// that is not yet in the map (a new group is appended).
	PartitionSplit byte = 1
	// PartitionMove moves slots from the source group to a primary already
	// in the map.
	PartitionMove byte = 2
)

// encodeClusterMap appends an optional cluster map (nil encodes as absent).
func encodeClusterMap(e *Encoder, m *cluster.Map) {
	if m == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Uint64(m.Version)
	// One byte per slot: group indices are bounded by cluster.MaxGroups.
	slots := make([]byte, len(m.Slots))
	for i, gi := range m.Slots {
		slots[i] = byte(gi)
	}
	e.VarBytes(slots)
	e.Uint32(uint32(len(m.Groups)))
	for _, g := range m.Groups {
		e.String(g.Primary)
		e.Uint32(uint32(len(g.Replicas)))
		for _, r := range g.Replicas {
			e.String(r)
		}
	}
}

// decodeClusterMap reads an optional cluster map and validates its
// structural invariants, so a hostile map never escapes the codec.
func decodeClusterMap(d *Decoder) (*cluster.Map, error) {
	present, err := d.Bool()
	if err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	m := &cluster.Map{}
	if m.Version, err = d.Uint64(); err != nil {
		return nil, err
	}
	slots, err := d.VarBytes(cluster.NumSlots)
	if err != nil {
		return nil, err
	}
	m.Slots = make([]uint32, len(slots))
	for i, b := range slots {
		m.Slots[i] = uint32(b)
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > cluster.MaxGroups {
		return nil, fmt.Errorf("%w: %d cluster groups", ErrTooLarge, n)
	}
	m.Groups = make([]cluster.Group, n)
	for i := range m.Groups {
		if m.Groups[i].Primary, err = d.String(MaxBytesLen); err != nil {
			return nil, err
		}
		rn, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		if rn > MaxGroupMembers {
			return nil, fmt.Errorf("%w: %d group replicas", ErrTooLarge, rn)
		}
		for j := uint32(0); j < rn; j++ {
			r, err := d.String(MaxBytesLen)
			if err != nil {
				return nil, err
			}
			m.Groups[i].Replicas = append(m.Groups[i].Replicas, r)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return m, nil
}

// encodeSlotList appends a bounded slot list.
func encodeSlotList(e *Encoder, slots []uint32) {
	e.Uint32(uint32(len(slots)))
	for _, s := range slots {
		e.Uint32(s)
	}
}

// decodeSlotList reads a bounded slot list.
func decodeSlotList(d *Decoder) ([]uint32, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > cluster.NumSlots {
		return nil, fmt.Errorf("%w: %d slots", ErrTooLarge, n)
	}
	out := make([]uint32, n)
	for i := range out {
		if out[i], err = d.Uint32(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ClusterMapRequest asks a cluster node for its current cluster map.
type ClusterMapRequest struct{}

// Type implements Message.
func (*ClusterMapRequest) Type() MsgType { return TypeClusterMapRequest }

func (m *ClusterMapRequest) encode(e *Encoder)       {}
func (m *ClusterMapRequest) decode(d *Decoder) error { return nil }

// ClusterMapInfo answers a ClusterMapRequest with the node's current map.
type ClusterMapInfo struct {
	// Map is the answering node's current cluster map.
	Map *cluster.Map
}

// Type implements Message.
func (*ClusterMapInfo) Type() MsgType { return TypeClusterMapInfo }

func (m *ClusterMapInfo) encode(e *Encoder) { encodeClusterMap(e, m.Map) }

func (m *ClusterMapInfo) decode(d *Decoder) error {
	var err error
	m.Map, err = decodeClusterMap(d)
	if err == nil && m.Map == nil {
		return fmt.Errorf("%w: ClusterMapInfo without a map", ErrBadFrame)
	}
	return err
}

// WrongPartition refuses a keyed operation whose slot this node's group does
// not own under the current map. It carries the refusing node's map so the
// client converges in one redirect round.
type WrongPartition struct {
	// Map is the refusing node's current cluster map.
	Map *cluster.Map
}

// Type implements Message.
func (*WrongPartition) Type() MsgType { return TypeWrongPartition }

func (m *WrongPartition) encode(e *Encoder) { encodeClusterMap(e, m.Map) }

func (m *WrongPartition) decode(d *Decoder) error {
	var err error
	m.Map, err = decodeClusterMap(d)
	if err == nil && m.Map == nil {
		return fmt.Errorf("%w: WrongPartition without a map", ErrBadFrame)
	}
	return err
}

// PartitionAdmin asks the receiving primary to hand a set of its slots to
// Target: freeze the slots, ship their records, flip the map to Version+1,
// and redirect traffic. Split and Move share the executor — they differ
// only in whether Target is already a group in the map.
type PartitionAdmin struct {
	// Action is PartitionSplit or PartitionMove.
	Action byte
	// Slots are the slots to move; all must be owned by the receiving
	// primary's group.
	Slots []uint32
	// Target is the advertised address of the receiving group's primary.
	Target string
	// TargetReplicas optionally advertises the target group's replicas in
	// the successor map (split only).
	TargetReplicas []string
}

// Type implements Message.
func (*PartitionAdmin) Type() MsgType { return TypePartitionAdmin }

func (m *PartitionAdmin) encode(e *Encoder) {
	e.Byte(m.Action)
	encodeSlotList(e, m.Slots)
	e.String(m.Target)
	e.Uint32(uint32(len(m.TargetReplicas)))
	for _, r := range m.TargetReplicas {
		e.String(r)
	}
}

func (m *PartitionAdmin) decode(d *Decoder) error {
	var err error
	if m.Action, err = d.Byte(); err != nil {
		return err
	}
	if m.Slots, err = decodeSlotList(d); err != nil {
		return err
	}
	if m.Target, err = d.String(MaxBytesLen); err != nil {
		return err
	}
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if n > MaxGroupMembers {
		return fmt.Errorf("%w: %d target replicas", ErrTooLarge, n)
	}
	for i := uint32(0); i < n; i++ {
		r, err := d.String(MaxBytesLen)
		if err != nil {
			return err
		}
		m.TargetReplicas = append(m.TargetReplicas, r)
	}
	return nil
}

// PartitionIngest streams one chunk of a partition handoff from the source
// primary to the target, mirroring the replication snapshot bootstrap:
// First marks the stream open, chunks carry one tenant's records, Done
// carries the successor map the target must install before acknowledging.
type PartitionIngest struct {
	// First marks the opening chunk of a handoff stream.
	First bool
	// Done marks the closing chunk; NewMap must be present.
	Done bool
	// Tenant is the namespace the chunk's records belong to.
	Tenant string
	// Records are the chunk's records (nil on First/Done-only chunks).
	Records []*store.Record
	// NewMap is the successor cluster map, present only on Done.
	NewMap *cluster.Map
}

// Type implements Message.
func (*PartitionIngest) Type() MsgType { return TypePartitionIngest }

func (m *PartitionIngest) encode(e *Encoder) {
	e.Bool(m.First)
	e.Bool(m.Done)
	e.String(m.Tenant)
	e.Uint32(uint32(len(m.Records)))
	for _, rec := range m.Records {
		EncodeRecord(e, rec)
	}
	encodeClusterMap(e, m.NewMap)
}

func (m *PartitionIngest) decode(d *Decoder) error {
	var err error
	if m.First, err = d.Bool(); err != nil {
		return err
	}
	if m.Done, err = d.Bool(); err != nil {
		return err
	}
	if m.Tenant, err = d.String(MaxTenantLen); err != nil {
		return err
	}
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if n > MaxIngestChunk {
		return fmt.Errorf("%w: %d ingest records", ErrTooLarge, n)
	}
	m.Records = make([]*store.Record, 0, n)
	for i := uint32(0); i < n; i++ {
		rec, err := DecodeRecord(d)
		if err != nil {
			return err
		}
		m.Records = append(m.Records, rec)
	}
	if m.NewMap, err = decodeClusterMap(d); err != nil {
		return err
	}
	if m.Done && m.NewMap == nil {
		return fmt.Errorf("%w: ingest Done without a successor map", ErrBadFrame)
	}
	return nil
}

// PartitionOK acknowledges a completed partition admin operation or ingest
// stream.
type PartitionOK struct {
	// Version is the cluster map version in force after the operation.
	Version uint64
}

// Type implements Message.
func (*PartitionOK) Type() MsgType { return TypePartitionOK }

func (m *PartitionOK) encode(e *Encoder) { e.Uint64(m.Version) }

func (m *PartitionOK) decode(d *Decoder) error {
	var err error
	m.Version, err = d.Uint64()
	return err
}
