// Package wire defines the binary message codec and framing for the §V
// protocols. Frames are length-prefixed so messages survive TCP stream
// segmentation; all integers are big-endian; all variable-length fields are
// length-prefixed and bounded, so a malicious peer cannot force unbounded
// allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Limits enforced while decoding.
const (
	// MaxVectorLen bounds sketch/vector dimensions (the paper sweeps up to
	// n = 31,000; we allow two orders of magnitude of headroom).
	MaxVectorLen = 1 << 22
	// MaxBytesLen bounds byte-string fields (keys, signatures, seeds, IDs).
	MaxBytesLen = 1 << 20
	// MaxFrameLen bounds a whole frame.
	MaxFrameLen = 1 << 28
	// MaxBatchLen bounds batch entries (normal-approach challenge lists).
	MaxBatchLen = 1 << 20
	// MaxTenantLen bounds tenant names on the wire and in the mutation
	// codec; it matches store.MaxTenantNameLen.
	MaxTenantLen = 64
	// MaxTenantList bounds the names of one TenantInfo answer.
	MaxTenantList = 1 << 16
)

// Errors returned by the codec.
var (
	ErrTooLarge  = errors.New("wire: field exceeds size limit")
	ErrTruncated = errors.New("wire: truncated message")
	ErrBadFrame  = errors.New("wire: malformed frame")
)

// Encoder appends primitive values to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Uint32 appends a big-endian uint32.
func (e *Encoder) Uint32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Uint64 appends a big-endian uint64.
func (e *Encoder) Uint64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Int64 appends a big-endian int64 (two's complement).
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Byte appends one byte.
func (e *Encoder) Byte(v byte) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Bytes32 appends a fixed 32-byte value.
func (e *Encoder) Bytes32(v [32]byte) { e.buf = append(e.buf, v[:]...) }

// VarBytes appends a length-prefixed byte string.
func (e *Encoder) VarBytes(v []byte) {
	e.Uint32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(v string) { e.VarBytes([]byte(v)) }

// Int64Slice appends a length-prefixed slice of int64.
func (e *Encoder) Int64Slice(v []int64) {
	e.Uint32(uint32(len(v)))
	for _, x := range v {
		e.Int64(x)
	}
}

// Decoder consumes primitive values from a buffer.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps buf for decoding.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Done returns an error unless the buffer was fully consumed — every message
// decoder calls it last to reject trailing garbage.
func (d *Decoder) Done() error {
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, d.Remaining())
	}
	return nil
}

func (d *Decoder) take(n int) ([]byte, error) {
	if n < 0 || d.Remaining() < n {
		return nil, ErrTruncated
	}
	out := d.buf[d.off : d.off+n]
	d.off += n
	return out, nil
}

// Uint32 reads a big-endian uint32.
func (d *Decoder) Uint32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// Uint64 reads a big-endian uint64.
func (d *Decoder) Uint64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// Int64 reads a big-endian int64.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Byte reads one byte.
func (d *Decoder) Byte() (byte, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Bool reads a boolean.
func (d *Decoder) Bool() (bool, error) {
	b, err := d.Byte()
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, fmt.Errorf("%w: bool byte %d", ErrBadFrame, b)
	}
	return b == 1, nil
}

// Bytes32 reads a fixed 32-byte value.
func (d *Decoder) Bytes32() ([32]byte, error) {
	var out [32]byte
	b, err := d.take(32)
	if err != nil {
		return out, err
	}
	copy(out[:], b)
	return out, nil
}

// VarBytes reads a length-prefixed byte string of at most max bytes. The
// returned slice is a copy.
func (d *Decoder) VarBytes(max int) ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(n) > max {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, n, max)
	}
	b, err := d.take(int(n))
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

// String reads a length-prefixed string of at most max bytes.
func (d *Decoder) String(max int) (string, error) {
	b, err := d.VarBytes(max)
	return string(b), err
}

// Int64Slice reads a length-prefixed int64 slice of at most max elements.
func (d *Decoder) Int64Slice(max int) ([]int64, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(n) > max {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, n, max)
	}
	if d.Remaining() < int(n)*8 {
		return nil, ErrTruncated
	}
	out := make([]int64, n)
	for i := range out {
		out[i], _ = d.Int64() // length pre-checked above
	}
	return out, nil
}

// WriteFrame writes a length-prefixed frame containing payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameLen {
		return fmt.Errorf("%w: frame %d bytes", ErrTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameLen {
		return nil, fmt.Errorf("%w: frame %d bytes", ErrTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: frame body: %v", ErrTruncated, err)
	}
	return payload, nil
}
