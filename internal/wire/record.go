package wire

// This file is the on-disk codec for store records. internal/persist frames
// these encodings into its WAL and snapshot files; keeping them here means
// the repo has one serialization layer for both the network protocol and the
// durable store.

import (
	"fmt"

	"fuzzyid/internal/core"
	"fuzzyid/internal/store"
)

// RecordVersion is the version byte leading every encoded store record.
// Bump it when the record layout changes; decoders reject versions they do
// not know rather than guessing.
const RecordVersion = 1

// EncodeHelper appends a HelperData: movements, digest, seed. A nil helper
// is encoded as an empty movement vector with zero digest and seed.
func EncodeHelper(e *Encoder, h *core.HelperData) {
	if h == nil || h.Sketch == nil || h.Sketch.Sketch == nil {
		e.Int64Slice(nil)
		e.Bytes32([32]byte{})
		e.VarBytes(nil)
		return
	}
	e.Int64Slice(h.Sketch.Sketch.Movements)
	e.Bytes32(h.Sketch.Digest)
	e.VarBytes(h.Seed)
}

// DecodeHelper reads a HelperData encoded by EncodeHelper; the all-empty
// encoding decodes back to nil.
func DecodeHelper(d *Decoder) (*core.HelperData, error) {
	return decodeHelper(d)
}

// EncodeRecord appends one store record: version, ID, public key, helper.
func EncodeRecord(e *Encoder, rec *store.Record) {
	e.Byte(RecordVersion)
	e.String(rec.ID)
	e.VarBytes(rec.PublicKey)
	EncodeHelper(e, rec.Helper)
}

// DecodeRecord reads one store record encoded by EncodeRecord.
func DecodeRecord(d *Decoder) (*store.Record, error) {
	v, err := d.Byte()
	if err != nil {
		return nil, err
	}
	if v != RecordVersion {
		return nil, fmt.Errorf("%w: record version %d, want %d", ErrBadFrame, v, RecordVersion)
	}
	rec := &store.Record{}
	if rec.ID, err = d.String(MaxBytesLen); err != nil {
		return nil, err
	}
	if rec.PublicKey, err = d.VarBytes(MaxBytesLen); err != nil {
		return nil, err
	}
	if rec.Helper, err = DecodeHelper(d); err != nil {
		return nil, err
	}
	if rec.Helper == nil {
		return nil, fmt.Errorf("%w: record %q without helper data", ErrBadFrame, rec.ID)
	}
	return rec, nil
}
