package wire

// This file defines the tenant administration sub-protocol: listing,
// creating and dropping tenant namespaces over the same connection the
// authentication protocols run on, plus the typed rejection a server sends
// when an operation names a namespace it does not host. The tenant carried
// by the regular request messages (EnrollRequest.Tenant etc.) selects the
// namespace of an individual protocol run; these messages manage the
// namespaces themselves.

import "fmt"

// TenantAction selects the operation of a TenantAdmin session. The values
// are part of the wire contract; append only.
type TenantAction byte

// Tenant administration actions.
const (
	// TenantActionList asks for the hosted namespace names.
	TenantActionList TenantAction = 1
	// TenantActionCreate creates a new namespace.
	TenantActionCreate TenantAction = 2
	// TenantActionDrop removes a namespace and every record in it.
	TenantActionDrop TenantAction = 3
	// TenantActionSetLimits installs a per-tenant QoS override (the
	// LimitsSpec carried alongside). Overrides are per-process and
	// runtime-only: they are not persisted or replicated.
	TenantActionSetLimits TenantAction = 4
	// TenantActionGetLimits asks for the namespace's effective QoS
	// envelope; answered with a TenantLimits.
	TenantActionGetLimits TenantAction = 5
)

// LimitsSpec is the wire form of one tenant's QoS envelope. A zero field
// means "no limit" (weight 0 is treated as 1).
type LimitsSpec struct {
	// RateMilli is the sustained session-admission rate in
	// millisessions/second (0 = unlimited).
	RateMilli uint64
	// Burst is the back-to-back admission allowance before the rate
	// limit bites (0 = one second of credit).
	Burst uint32
	// MaxConcurrent caps in-flight sessions (0 = unlimited).
	MaxConcurrent uint32
	// Weight is the tenant's share of the identification scan pool.
	Weight uint32
	// BytesPerSession prices write-payload bytes into the rate bucket: a
	// session carrying B payload bytes costs 1 + B/BytesPerSession
	// sessions of rate credit (0 = payload size uncharged).
	BytesPerSession uint64
}

func (s *LimitsSpec) encode(e *Encoder) {
	e.Uint64(s.RateMilli)
	e.Uint32(s.Burst)
	e.Uint32(s.MaxConcurrent)
	e.Uint32(s.Weight)
	e.Uint64(s.BytesPerSession)
}

func (s *LimitsSpec) decode(d *Decoder) error {
	var err error
	if s.RateMilli, err = d.Uint64(); err != nil {
		return err
	}
	if s.Burst, err = d.Uint32(); err != nil {
		return err
	}
	if s.MaxConcurrent, err = d.Uint32(); err != nil {
		return err
	}
	if s.Weight, err = d.Uint32(); err != nil {
		return err
	}
	s.BytesPerSession, err = d.Uint64()
	return err
}

// TenantAdmin opens a tenant administration session. List is answered with
// a TenantInfo; create and drop are answered with an Accept echoing the
// canonical tenant name, an UnknownTenant (drop of an absent namespace), a
// NotPrimary (mutating admin ops on a read-only replica), or a Reject.
// Set-limits is answered with an Accept, get-limits with a TenantLimits;
// both answer UnknownTenant for absent namespaces and Reject when the
// server runs without admission control.
type TenantAdmin struct {
	// Action is the operation to perform.
	Action TenantAction
	// Tenant is the namespace to operate on (ignored for list).
	Tenant string
	// Limits is the QoS envelope of a set-limits action (nil — and not
	// encoded — for every other action, keeping the pre-QoS byte layout).
	Limits *LimitsSpec
}

// Type implements Message.
func (*TenantAdmin) Type() MsgType { return TypeTenantAdmin }

func (m *TenantAdmin) encode(e *Encoder) {
	e.Byte(byte(m.Action))
	e.String(m.Tenant)
	if m.Action == TenantActionSetLimits {
		var spec LimitsSpec
		if m.Limits != nil {
			spec = *m.Limits
		}
		spec.encode(e)
	}
}

func (m *TenantAdmin) decode(d *Decoder) error {
	b, err := d.Byte()
	if err != nil {
		return err
	}
	switch TenantAction(b) {
	case TenantActionList, TenantActionCreate, TenantActionDrop,
		TenantActionSetLimits, TenantActionGetLimits:
		m.Action = TenantAction(b)
	default:
		return fmt.Errorf("%w: tenant action %d", ErrBadFrame, b)
	}
	if m.Tenant, err = d.String(MaxTenantLen); err != nil {
		return err
	}
	m.Limits = nil
	if m.Action == TenantActionSetLimits {
		m.Limits = &LimitsSpec{}
		return m.Limits.decode(d)
	}
	return nil
}

// TenantInfo answers a tenant list request.
type TenantInfo struct {
	// Tenants are the hosted namespace names, sorted; the default tenant
	// is always present.
	Tenants []string
}

// Type implements Message.
func (*TenantInfo) Type() MsgType { return TypeTenantInfo }

func (m *TenantInfo) encode(e *Encoder) {
	e.Uint32(uint32(len(m.Tenants)))
	for _, name := range m.Tenants {
		e.String(name)
	}
}

func (m *TenantInfo) decode(d *Decoder) error {
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if int(n) > MaxTenantList {
		return fmt.Errorf("%w: tenant list %d", ErrTooLarge, n)
	}
	m.Tenants = make([]string, n)
	for i := range m.Tenants {
		if m.Tenants[i], err = d.String(MaxTenantLen); err != nil {
			return err
		}
	}
	return nil
}

// UnknownTenant rejects an operation naming a tenant namespace the server
// does not host — distinct from a generic Reject so clients can surface an
// actionable error (create the tenant, or fix the name) instead of a bare
// protocol failure.
type UnknownTenant struct {
	// Tenant is the canonical name of the namespace that does not exist.
	Tenant string
}

// Type implements Message.
func (*UnknownTenant) Type() MsgType { return TypeUnknownTenant }

func (m *UnknownTenant) encode(e *Encoder) { e.String(m.Tenant) }

func (m *UnknownTenant) decode(d *Decoder) error {
	var err error
	m.Tenant, err = d.String(MaxTenantLen)
	return err
}

// TenantLimits answers a get-limits tenant-admin request: the namespace's
// effective QoS envelope and whether it comes from a per-tenant override.
type TenantLimits struct {
	// Tenant is the canonical namespace name.
	Tenant string
	// Spec is the effective envelope.
	Spec LimitsSpec
	// Overridden reports whether Spec is a per-tenant override (false =
	// the server's configured defaults).
	Overridden bool
}

// Type implements Message.
func (*TenantLimits) Type() MsgType { return TypeTenantLimits }

func (m *TenantLimits) encode(e *Encoder) {
	e.String(m.Tenant)
	m.Spec.encode(e)
	e.Bool(m.Overridden)
}

func (m *TenantLimits) decode(d *Decoder) error {
	var err error
	if m.Tenant, err = d.String(MaxTenantLen); err != nil {
		return err
	}
	if err = m.Spec.decode(d); err != nil {
		return err
	}
	m.Overridden, err = d.Bool()
	return err
}

// Overloaded sheds a session: the admission controller refused to run it
// because the tenant's rate, concurrency or scan-queue budget was
// exhausted. Distinct from Reject — the condition is transient, and the
// message carries when a retry is worth attempting.
type Overloaded struct {
	// RetryAfterMS hints when the client should retry, in milliseconds
	// (minimum 1).
	RetryAfterMS uint32
	// Reason names the limit that shed the session: "rate",
	// "concurrency" or "scan".
	Reason string
}

// Type implements Message.
func (*Overloaded) Type() MsgType { return TypeOverloaded }

func (m *Overloaded) encode(e *Encoder) {
	e.Uint32(m.RetryAfterMS)
	e.String(m.Reason)
}

func (m *Overloaded) decode(d *Decoder) error {
	var err error
	if m.RetryAfterMS, err = d.Uint32(); err != nil {
		return err
	}
	m.Reason, err = d.String(MaxBytesLen)
	return err
}
