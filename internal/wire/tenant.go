package wire

// This file defines the tenant administration sub-protocol: listing,
// creating and dropping tenant namespaces over the same connection the
// authentication protocols run on, plus the typed rejection a server sends
// when an operation names a namespace it does not host. The tenant carried
// by the regular request messages (EnrollRequest.Tenant etc.) selects the
// namespace of an individual protocol run; these messages manage the
// namespaces themselves.

import "fmt"

// TenantAction selects the operation of a TenantAdmin session. The values
// are part of the wire contract; append only.
type TenantAction byte

// Tenant administration actions.
const (
	// TenantActionList asks for the hosted namespace names.
	TenantActionList TenantAction = 1
	// TenantActionCreate creates a new namespace.
	TenantActionCreate TenantAction = 2
	// TenantActionDrop removes a namespace and every record in it.
	TenantActionDrop TenantAction = 3
)

// TenantAdmin opens a tenant administration session. List is answered with
// a TenantInfo; create and drop are answered with an Accept echoing the
// canonical tenant name, an UnknownTenant (drop of an absent namespace), a
// NotPrimary (mutating admin ops on a read-only replica), or a Reject.
type TenantAdmin struct {
	// Action is the operation to perform.
	Action TenantAction
	// Tenant is the namespace to create or drop (ignored for list).
	Tenant string
}

// Type implements Message.
func (*TenantAdmin) Type() MsgType { return TypeTenantAdmin }

func (m *TenantAdmin) encode(e *Encoder) {
	e.Byte(byte(m.Action))
	e.String(m.Tenant)
}

func (m *TenantAdmin) decode(d *Decoder) error {
	b, err := d.Byte()
	if err != nil {
		return err
	}
	switch TenantAction(b) {
	case TenantActionList, TenantActionCreate, TenantActionDrop:
		m.Action = TenantAction(b)
	default:
		return fmt.Errorf("%w: tenant action %d", ErrBadFrame, b)
	}
	m.Tenant, err = d.String(MaxTenantLen)
	return err
}

// TenantInfo answers a tenant list request.
type TenantInfo struct {
	// Tenants are the hosted namespace names, sorted; the default tenant
	// is always present.
	Tenants []string
}

// Type implements Message.
func (*TenantInfo) Type() MsgType { return TypeTenantInfo }

func (m *TenantInfo) encode(e *Encoder) {
	e.Uint32(uint32(len(m.Tenants)))
	for _, name := range m.Tenants {
		e.String(name)
	}
}

func (m *TenantInfo) decode(d *Decoder) error {
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if int(n) > MaxTenantList {
		return fmt.Errorf("%w: tenant list %d", ErrTooLarge, n)
	}
	m.Tenants = make([]string, n)
	for i := range m.Tenants {
		if m.Tenants[i], err = d.String(MaxTenantLen); err != nil {
			return err
		}
	}
	return nil
}

// UnknownTenant rejects an operation naming a tenant namespace the server
// does not host — distinct from a generic Reject so clients can surface an
// actionable error (create the tenant, or fix the name) instead of a bare
// protocol failure.
type UnknownTenant struct {
	// Tenant is the canonical name of the namespace that does not exist.
	Tenant string
}

// Type implements Message.
func (*UnknownTenant) Type() MsgType { return TypeUnknownTenant }

func (m *UnknownTenant) encode(e *Encoder) { e.String(m.Tenant) }

func (m *UnknownTenant) decode(d *Decoder) error {
	var err error
	m.Tenant, err = d.String(MaxTenantLen)
	return err
}
