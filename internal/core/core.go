// Package core implements the paper's primary contribution: the succinct
// fuzzy extractor of §IV-C, obtained from the Chebyshev-metric robust secure
// sketch via the generic secure-sketch + strong-extractor construction:
//
//	Gen(x)    = (R, P) with P = (s, r), s <- robustSS(x), R = Ext(x; r)
//	Rep(y, P) = Ext(robustRec(y, s); r) whenever dis(x, y) <= t
//
// The package also provides the closed-form security accounting of
// Theorem 3: min-entropy, residual (average min-)entropy, entropy loss,
// sketch storage and the false-close probability bound of §V.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"fuzzyid/internal/extract"
	"fuzzyid/internal/numberline"
	"fuzzyid/internal/sketch"
)

// Defaults for Gen.
const (
	// DefaultKeyLen is the extracted key length in bytes (256 bits; the
	// paper's SHA-256 extractor output).
	DefaultKeyLen = 32
	// DefaultSeedLen is the extractor seed length in bytes.
	DefaultSeedLen = 32
)

// Errors returned by the fuzzy extractor.
var (
	ErrDimension  = errors.New("core: input dimension does not match configured dimension")
	ErrNilHelper  = errors.New("core: nil helper data")
	ErrBadKeyLen  = errors.New("core: key length must be positive")
	ErrBadSeedLen = errors.New("core: seed length must be positive")
)

// Params configures a fuzzy extractor.
type Params struct {
	// Line holds the number-line parameters (a, k, v, t) of Definition 4.
	Line numberline.Params
	// Dimension is the expected number of coordinates n. If zero, any
	// dimension is accepted.
	Dimension int
	// KeyLen is the extracted key length in bytes; 0 means DefaultKeyLen.
	KeyLen int
	// SeedLen is the extractor seed length in bytes; 0 means DefaultSeedLen.
	SeedLen int
}

// PaperParams returns the configuration of Table II: the paper's line
// (a=100, k=4, v=500, t=100) with n = 5000 and a 256-bit key.
func PaperParams() Params {
	return Params{Line: numberline.PaperParams(), Dimension: 5000}
}

// SecurityReport holds the closed-form security accounting of Theorem 3 and
// the §V false-close analysis for a given dimension n.
type SecurityReport struct {
	// N is the vector dimension the report is computed for.
	N int
	// MinEntropyBits is m = n*log2(k*a*v), the min-entropy of a uniform
	// input.
	MinEntropyBits float64
	// ResidualEntropyBits is m̃ = n*log2(v), the average min-entropy of the
	// input given the sketch (Theorem 3).
	ResidualEntropyBits float64
	// EntropyLossBits is m - m̃ = n*log2(k*a).
	EntropyLossBits float64
	// SketchStorageBits is n*log2(k*a + 1), the information content of the
	// stored sketch.
	SketchStorageBits float64
	// FalseCloseExponent is log2 of the §V bound Pr[E] < ((2t+1)/(k*a))^n;
	// the probability bound itself is 2^FalseCloseExponent.
	FalseCloseExponent float64
}

// Report computes the security accounting for dimension n under the
// line parameters.
func (p Params) Report(n int) SecurityReport {
	ka := float64(p.Line.K * p.Line.A)
	kav := ka * float64(p.Line.V)
	fn := float64(n)
	return SecurityReport{
		N:                   n,
		MinEntropyBits:      fn * math.Log2(kav),
		ResidualEntropyBits: fn * math.Log2(float64(p.Line.V)),
		EntropyLossBits:     fn * math.Log2(ka),
		SketchStorageBits:   fn * math.Log2(ka+1),
		FalseCloseExponent:  fn * math.Log2(float64(2*p.Line.T+1)/ka),
	}
}

// HelperData is the public value P = (s, r) of Gen: the robust sketch plus
// the extractor seed. It may be stored and transmitted in the clear; the
// robust digest detects modification.
type HelperData struct {
	// Sketch is the robust secure sketch s.
	Sketch *sketch.RobustSketch
	// Seed is the strong-extractor seed r.
	Seed []byte
}

// Clone returns an independent copy of h.
func (h *HelperData) Clone() *HelperData {
	if h == nil {
		return nil
	}
	seed := make([]byte, len(h.Seed))
	copy(seed, h.Seed)
	return &HelperData{Sketch: h.Sketch.Clone(), Seed: seed}
}

// Dimension returns the number of sketch coordinates n.
func (h *HelperData) Dimension() int {
	if h == nil || h.Sketch == nil {
		return 0
	}
	return h.Sketch.Dimension()
}

// FuzzyExtractor is the succinct fuzzy extractor. It is safe for concurrent
// use: all state is immutable after construction.
type FuzzyExtractor struct {
	params  Params
	line    *numberline.Line
	robust  *sketch.Robust
	ext     extract.Extractor
	keyLen  int
	seedLen int
	seedSrc func(int) ([]byte, error)
}

// Option configures the fuzzy extractor.
type Option interface {
	apply(*FuzzyExtractor)
}

type optionFunc func(*FuzzyExtractor)

func (f optionFunc) apply(fe *FuzzyExtractor) { f(fe) }

// WithExtractor selects the strong extractor (default extract.HMAC).
func WithExtractor(e extract.Extractor) Option {
	return optionFunc(func(fe *FuzzyExtractor) { fe.ext = e })
}

// WithCoins sets the randomness source for the sketch boundary coin flips;
// tests use this for determinism.
func WithCoins(r io.Reader) Option {
	return optionFunc(func(fe *FuzzyExtractor) {
		fe.robust = sketch.NewRobust(sketch.NewChebyshev(fe.line, sketch.WithCoins(r)))
	})
}

// WithSeedSource overrides the extractor-seed generator (default
// extract.NewSeed); tests use this for determinism.
func WithSeedSource(src func(int) ([]byte, error)) Option {
	return optionFunc(func(fe *FuzzyExtractor) { fe.seedSrc = src })
}

// New validates p and constructs a fuzzy extractor.
func New(p Params, opts ...Option) (*FuzzyExtractor, error) {
	line, err := numberline.New(p.Line)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if p.KeyLen < 0 {
		return nil, ErrBadKeyLen
	}
	if p.SeedLen < 0 {
		return nil, ErrBadSeedLen
	}
	fe := &FuzzyExtractor{
		params:  p,
		line:    line,
		robust:  sketch.NewRobust(sketch.NewChebyshev(line)),
		ext:     extract.HMAC{},
		keyLen:  p.KeyLen,
		seedLen: p.SeedLen,
		seedSrc: extract.NewSeed,
	}
	if fe.keyLen == 0 {
		fe.keyLen = DefaultKeyLen
	}
	if fe.seedLen == 0 {
		fe.seedLen = DefaultSeedLen
	}
	for _, o := range opts {
		o.apply(fe)
	}
	return fe, nil
}

// MustNew is New for compile-time-constant parameters; it panics on error.
func MustNew(p Params, opts ...Option) *FuzzyExtractor {
	fe, err := New(p, opts...)
	if err != nil {
		panic(fmt.Sprintf("core.MustNew: %v", err))
	}
	return fe
}

// Params returns the construction parameters.
func (fe *FuzzyExtractor) Params() Params { return fe.params }

// Line returns the underlying number line.
func (fe *FuzzyExtractor) Line() *numberline.Line { return fe.line }

// Sketcher returns the robust sketcher, for callers (the identification
// protocol) that need sketch-only operations.
func (fe *FuzzyExtractor) Sketcher() *sketch.Robust { return fe.robust }

// KeyLen returns the extracted key length in bytes.
func (fe *FuzzyExtractor) KeyLen() int { return fe.keyLen }

// Report returns the security accounting for the configured dimension (or
// for n if the configured dimension is zero).
func (fe *FuzzyExtractor) Report(n int) SecurityReport {
	if fe.params.Dimension != 0 {
		n = fe.params.Dimension
	}
	return fe.params.Report(n)
}

// Gen implements the generation procedure: Gen(x) -> (R, P).
func (fe *FuzzyExtractor) Gen(x numberline.Vector) (key []byte, helper *HelperData, err error) {
	if err := fe.checkDimension(len(x)); err != nil {
		return nil, nil, err
	}
	rs, err := fe.robust.Sketch(x)
	if err != nil {
		return nil, nil, fmt.Errorf("core: gen sketch: %w", err)
	}
	seed, err := fe.seedSrc(fe.seedLen)
	if err != nil {
		return nil, nil, fmt.Errorf("core: gen seed: %w", err)
	}
	key, err = fe.ext.Extract(seed, encodeVector(x), fe.keyLen)
	if err != nil {
		return nil, nil, fmt.Errorf("core: gen extract: %w", err)
	}
	return key, &HelperData{Sketch: rs, Seed: seed}, nil
}

// Rep implements the reproduction procedure: Rep(y, P) -> R for any y within
// Chebyshev distance t of the value x that generated P. Failure modes:
// sketch.ErrNotClose when y is too far, sketch.ErrTampered when the helper
// data was modified.
func (fe *FuzzyExtractor) Rep(y numberline.Vector, helper *HelperData) ([]byte, error) {
	if helper == nil || helper.Sketch == nil || len(helper.Seed) == 0 {
		return nil, ErrNilHelper
	}
	if err := fe.checkDimension(len(y)); err != nil {
		return nil, err
	}
	x, err := fe.robust.Recover(y, helper.Sketch)
	if err != nil {
		return nil, fmt.Errorf("core: rep recover: %w", err)
	}
	key, err := fe.ext.Extract(helper.Seed, encodeVector(x), fe.keyLen)
	if err != nil {
		return nil, fmt.Errorf("core: rep extract: %w", err)
	}
	return key, nil
}

// SketchOnly runs the plain (non-robust) sketch algorithm on x. The
// identification protocol's probe message is such a sketch: it must not be
// robust because the server never learns x.
func (fe *FuzzyExtractor) SketchOnly(x numberline.Vector) (*sketch.Sketch, error) {
	if err := fe.checkDimension(len(x)); err != nil {
		return nil, err
	}
	return fe.robust.Inner().Sketch(x)
}

func (fe *FuzzyExtractor) checkDimension(n int) error {
	if fe.params.Dimension != 0 && n != fe.params.Dimension {
		return fmt.Errorf("%w: got %d, want %d", ErrDimension, n, fe.params.Dimension)
	}
	return nil
}

// encodeVector renders a vector into canonical bytes for extraction:
// length-prefixed big-endian int64s.
func encodeVector(x numberline.Vector) []byte {
	buf := make([]byte, 8*(1+len(x)))
	binary.BigEndian.PutUint64(buf, uint64(len(x)))
	for i, xi := range x {
		binary.BigEndian.PutUint64(buf[8*(i+1):], uint64(xi))
	}
	return buf
}
