package core

import (
	"bytes"
	"math/rand"
	"testing"

	"fuzzyid/internal/numberline"
)

func TestCustomKeyAndSeedLengths(t *testing.T) {
	tests := []struct {
		name    string
		keyLen  int
		seedLen int
	}{
		{name: "long key", keyLen: 64, seedLen: 32},
		{name: "short key", keyLen: 16, seedLen: 16},
		{name: "defaults", keyLen: 0, seedLen: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fe, err := New(Params{
				Line:      numberline.PaperParams(),
				Dimension: 16,
				KeyLen:    tt.keyLen,
				SeedLen:   tt.seedLen,
			})
			if err != nil {
				t.Fatal(err)
			}
			wantKey := tt.keyLen
			if wantKey == 0 {
				wantKey = DefaultKeyLen
			}
			wantSeed := tt.seedLen
			if wantSeed == 0 {
				wantSeed = DefaultSeedLen
			}
			rng := rand.New(rand.NewSource(151))
			x := randomVec(rng, fe.Line(), 16)
			key, helper, err := fe.Gen(x)
			if err != nil {
				t.Fatal(err)
			}
			if len(key) != wantKey {
				t.Errorf("key length = %d, want %d", len(key), wantKey)
			}
			if len(helper.Seed) != wantSeed {
				t.Errorf("seed length = %d, want %d", len(helper.Seed), wantSeed)
			}
			got, err := fe.Rep(x, helper)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, key) {
				t.Error("round trip failed with custom lengths")
			}
		})
	}
}

func TestDeterministicCoinsProduceStableSketch(t *testing.T) {
	// With pinned coins and a pinned seed source, Gen is fully
	// deterministic — the property experiments rely on for reproducibility.
	fixedSeed := func(n int) ([]byte, error) {
		s := make([]byte, n)
		for i := range s {
			s[i] = 0x5A
		}
		return s, nil
	}
	mk := func() *FuzzyExtractor {
		return MustNew(Params{Line: numberline.PaperParams(), Dimension: 8},
			WithCoins(constReader(0)), WithSeedSource(fixedSeed))
	}
	rng := rand.New(rand.NewSource(152))
	x := randomVec(rng, mk().Line(), 8)
	k1, h1, err := mk().Gen(x)
	if err != nil {
		t.Fatal(err)
	}
	k2, h2, err := mk().Gen(x)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k1, k2) {
		t.Error("keys differ under pinned randomness")
	}
	for i := range h1.Sketch.Sketch.Movements {
		if h1.Sketch.Sketch.Movements[i] != h2.Sketch.Sketch.Movements[i] {
			t.Fatal("sketches differ under pinned randomness")
		}
	}
	if h1.Sketch.Digest != h2.Sketch.Digest {
		t.Error("digests differ under pinned randomness")
	}
}

// constReader yields an endless stream of one byte.
type constReader byte

func (c constReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(c)
	}
	return len(p), nil
}
