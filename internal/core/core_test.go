package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"fuzzyid/internal/extract"
	"fuzzyid/internal/numberline"
	"fuzzyid/internal/sketch"
)

// testParams is a small but realistic configuration for fast tests.
func testParams() Params {
	return Params{Line: numberline.PaperParams(), Dimension: 64}
}

func newFE(t *testing.T, opts ...Option) *FuzzyExtractor {
	t.Helper()
	fe, err := New(testParams(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return fe
}

func randomVec(rng *rand.Rand, l *numberline.Line, n int) numberline.Vector {
	v := make(numberline.Vector, n)
	for i := range v {
		v[i] = l.Normalize(rng.Int63n(l.RingSize()) - l.RingSize()/2)
	}
	return v
}

func perturb(rng *rand.Rand, l *numberline.Line, x numberline.Vector, maxD int64) numberline.Vector {
	y := make(numberline.Vector, len(x))
	for i := range x {
		y[i] = l.Add(x[i], rng.Int63n(2*maxD+1)-maxD)
	}
	return y
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Params{Line: numberline.Params{A: -1, K: 4, V: 8, T: 1}}); err == nil {
		t.Error("invalid line accepted")
	}
	if _, err := New(Params{Line: numberline.PaperParams(), KeyLen: -1}); !errors.Is(err, ErrBadKeyLen) {
		t.Errorf("negative key length err = %v", err)
	}
	if _, err := New(Params{Line: numberline.PaperParams(), SeedLen: -1}); !errors.Is(err, ErrBadSeedLen) {
		t.Errorf("negative seed length err = %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad params did not panic")
		}
	}()
	MustNew(Params{})
}

func TestDefaults(t *testing.T) {
	fe := newFE(t)
	if fe.KeyLen() != DefaultKeyLen {
		t.Errorf("KeyLen = %d, want %d", fe.KeyLen(), DefaultKeyLen)
	}
	if fe.Line() == nil || fe.Sketcher() == nil {
		t.Error("accessors returned nil")
	}
	if fe.Params().Dimension != 64 {
		t.Errorf("Params().Dimension = %d", fe.Params().Dimension)
	}
}

func TestGenRepRoundTrip(t *testing.T) {
	fe := newFE(t)
	rng := rand.New(rand.NewSource(61))
	l := fe.Line()
	for trial := 0; trial < 25; trial++ {
		x := randomVec(rng, l, 64)
		key, helper, err := fe.Gen(x)
		if err != nil {
			t.Fatalf("Gen: %v", err)
		}
		if len(key) != DefaultKeyLen {
			t.Fatalf("key length = %d", len(key))
		}
		if helper.Dimension() != 64 {
			t.Fatalf("helper dimension = %d", helper.Dimension())
		}
		// Exact probe.
		got, err := fe.Rep(x, helper)
		if err != nil {
			t.Fatalf("Rep(exact): %v", err)
		}
		if !bytes.Equal(got, key) {
			t.Fatal("Rep(exact) produced different key")
		}
		// Noisy probe within threshold.
		y := perturb(rng, l, x, l.Threshold())
		got, err = fe.Rep(y, helper)
		if err != nil {
			t.Fatalf("Rep(noisy): %v", err)
		}
		if !bytes.Equal(got, key) {
			t.Fatal("Rep(noisy) produced different key")
		}
	}
}

func TestRepRejectsFarProbe(t *testing.T) {
	fe := newFE(t)
	rng := rand.New(rand.NewSource(62))
	l := fe.Line()
	x := randomVec(rng, l, 64)
	_, helper, err := fe.Gen(x)
	if err != nil {
		t.Fatal(err)
	}
	far := x.Clone()
	far[10] = l.Add(far[10], l.Threshold()+1)
	if _, err := fe.Rep(far, helper); err == nil {
		t.Fatal("far probe accepted")
	}
	// A completely different user must also fail.
	other := randomVec(rng, l, 64)
	if _, err := fe.Rep(other, helper); err == nil {
		t.Fatal("impostor accepted")
	}
}

func TestRepDetectsTamperedHelper(t *testing.T) {
	fe := newFE(t)
	rng := rand.New(rand.NewSource(63))
	l := fe.Line()
	x := randomVec(rng, l, 64)
	_, helper, err := fe.Gen(x)
	if err != nil {
		t.Fatal(err)
	}
	evil := helper.Clone()
	evil.Sketch.Digest[5] ^= 0xff
	if _, err := fe.Rep(x, evil); !errors.Is(err, sketch.ErrTampered) {
		t.Fatalf("tampered digest err = %v, want ErrTampered", err)
	}
	// Tampering with the seed changes the key but is not detectable by the
	// sketch; the signature layer of the protocol catches it. Here we only
	// require a different key, not an error.
	evil2 := helper.Clone()
	evil2.Seed[0] ^= 0x01
	key2, err := fe.Rep(x, evil2)
	if err != nil {
		t.Fatalf("Rep with modified seed: %v", err)
	}
	orig, err := fe.Rep(x, helper)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(key2, orig) {
		t.Fatal("modified seed produced the same key")
	}
}

func TestDimensionEnforcement(t *testing.T) {
	fe := newFE(t)
	rng := rand.New(rand.NewSource(64))
	short := randomVec(rng, fe.Line(), 5)
	if _, _, err := fe.Gen(short); !errors.Is(err, ErrDimension) {
		t.Errorf("Gen wrong dimension err = %v", err)
	}
	x := randomVec(rng, fe.Line(), 64)
	_, helper, err := fe.Gen(x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fe.Rep(short, helper); !errors.Is(err, ErrDimension) {
		t.Errorf("Rep wrong dimension err = %v", err)
	}
	if _, err := fe.SketchOnly(short); !errors.Is(err, ErrDimension) {
		t.Errorf("SketchOnly wrong dimension err = %v", err)
	}
	// Dimension 0 accepts anything.
	flex, err := New(Params{Line: numberline.PaperParams()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := flex.Gen(short); err != nil {
		t.Errorf("flexible-dimension Gen: %v", err)
	}
}

func TestRepNilHelper(t *testing.T) {
	fe := newFE(t)
	x := randomVec(rand.New(rand.NewSource(65)), fe.Line(), 64)
	if _, err := fe.Rep(x, nil); !errors.Is(err, ErrNilHelper) {
		t.Errorf("nil helper err = %v", err)
	}
	if _, err := fe.Rep(x, &HelperData{}); !errors.Is(err, ErrNilHelper) {
		t.Errorf("empty helper err = %v", err)
	}
}

func TestFreshSeedsPerGen(t *testing.T) {
	fe := newFE(t)
	rng := rand.New(rand.NewSource(66))
	x := randomVec(rng, fe.Line(), 64)
	k1, h1, err := fe.Gen(x)
	if err != nil {
		t.Fatal(err)
	}
	k2, h2, err := fe.Gen(x)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(h1.Seed, h2.Seed) {
		t.Error("two Gen calls reused the extractor seed")
	}
	if bytes.Equal(k1, k2) {
		t.Error("two Gen calls derived identical keys (seed ignored?)")
	}
}

func TestAllExtractorsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for _, e := range extract.All() {
		t.Run(e.Name(), func(t *testing.T) {
			fe, err := New(testParams(), WithExtractor(e))
			if err != nil {
				t.Fatal(err)
			}
			l := fe.Line()
			x := randomVec(rng, l, 64)
			key, helper, err := fe.Gen(x)
			if err != nil {
				t.Fatalf("Gen: %v", err)
			}
			y := perturb(rng, l, x, l.Threshold())
			got, err := fe.Rep(y, helper)
			if err != nil {
				t.Fatalf("Rep: %v", err)
			}
			if !bytes.Equal(got, key) {
				t.Fatal("key mismatch")
			}
		})
	}
}

func TestHelperDataClone(t *testing.T) {
	fe := newFE(t)
	x := randomVec(rand.New(rand.NewSource(68)), fe.Line(), 64)
	_, helper, err := fe.Gen(x)
	if err != nil {
		t.Fatal(err)
	}
	cl := helper.Clone()
	cl.Seed[0] ^= 1
	cl.Sketch.Sketch.Movements[0]++
	if helper.Seed[0] == cl.Seed[0] {
		t.Error("Clone aliases seed")
	}
	if helper.Sketch.Sketch.Movements[0] == cl.Sketch.Sketch.Movements[0] {
		t.Error("Clone aliases movements")
	}
	var nilH *HelperData
	if nilH.Clone() != nil || nilH.Dimension() != 0 {
		t.Error("nil helper helpers misbehave")
	}
}

func TestSecurityReportTable2(t *testing.T) {
	// Table II of the paper: with a=100, k=4, v=500 and n=5000 the residual
	// entropy is m̃ ≈ 44,829 bits and the storage ≈ 45,000 bits (the paper
	// rounds up; the exact closed form is n*log2(ka+1) ≈ 43,237).
	p := PaperParams()
	rep := p.Report(5000)
	if got, want := rep.ResidualEntropyBits, 5000*math.Log2(500); math.Abs(got-want) > 1e-6 {
		t.Errorf("ResidualEntropyBits = %v, want %v", got, want)
	}
	if math.Abs(rep.ResidualEntropyBits-44829) > 1 {
		t.Errorf("m̃ = %.0f bits, paper reports ≈ 44,829", rep.ResidualEntropyBits)
	}
	if got, want := rep.MinEntropyBits, 5000*math.Log2(200000); math.Abs(got-want) > 1e-6 {
		t.Errorf("MinEntropyBits = %v, want %v", got, want)
	}
	if got, want := rep.EntropyLossBits, 5000*math.Log2(400); math.Abs(got-want) > 1e-6 {
		t.Errorf("EntropyLossBits = %v, want %v", got, want)
	}
	if got, want := rep.SketchStorageBits, 5000*math.Log2(401); math.Abs(got-want) > 1e-6 {
		t.Errorf("SketchStorageBits = %v, want %v", got, want)
	}
	// m = m̃ + loss must hold exactly.
	if math.Abs(rep.MinEntropyBits-(rep.ResidualEntropyBits+rep.EntropyLossBits)) > 1e-6 {
		t.Error("entropy accounting identity violated")
	}
	// False-close bound: (2t+1)/ka = 201/400, so the exponent is
	// n*log2(201/400) ≈ -4967 — overwhelmingly negative.
	if rep.FalseCloseExponent > -4000 {
		t.Errorf("FalseCloseExponent = %v, want strongly negative", rep.FalseCloseExponent)
	}
}

func TestReportUsesConfiguredDimension(t *testing.T) {
	fe := newFE(t) // Dimension 64
	rep := fe.Report(999)
	if rep.N != 64 {
		t.Errorf("Report dimension = %d, want configured 64", rep.N)
	}
	flex := MustNew(Params{Line: numberline.PaperParams()})
	if got := flex.Report(7).N; got != 7 {
		t.Errorf("flexible Report dimension = %d, want 7", got)
	}
}

func TestSketchOnlyMatchesEnrolledSketch(t *testing.T) {
	// The probe sketch of a noisy reading must Match the enrolled robust
	// sketch — the property the identification protocol relies on.
	fe := newFE(t)
	rng := rand.New(rand.NewSource(69))
	l := fe.Line()
	x := randomVec(rng, l, 64)
	_, helper, err := fe.Gen(x)
	if err != nil {
		t.Fatal(err)
	}
	y := perturb(rng, l, x, l.Threshold())
	probe, err := fe.SketchOnly(y)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := fe.Sketcher().Match(helper.Sketch, probe)
	if err != nil || !ok {
		t.Fatalf("Match = (%v, %v), want (true, nil)", ok, err)
	}
}

func TestWithSeedSourceDeterminism(t *testing.T) {
	fixed := func(n int) ([]byte, error) {
		s := make([]byte, n)
		for i := range s {
			s[i] = 0xAB
		}
		return s, nil
	}
	fe, err := New(testParams(), WithSeedSource(fixed), WithCoins(bytes.NewReader(nil)))
	if err != nil {
		t.Fatal(err)
	}
	_ = fe
	// A failing seed source must surface as a Gen error.
	failing := func(int) ([]byte, error) { return nil, errors.New("rng broken") }
	fe2, err := New(testParams(), WithSeedSource(failing))
	if err != nil {
		t.Fatal(err)
	}
	x := randomVec(rand.New(rand.NewSource(70)), fe2.Line(), 64)
	if _, _, err := fe2.Gen(x); err == nil {
		t.Error("failing seed source did not error")
	}
}
