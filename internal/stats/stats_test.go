package stats

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestTimingBasics(t *testing.T) {
	var tm Timing
	if _, err := tm.Mean(); !errors.Is(err, ErrNoData) {
		t.Errorf("empty Mean err = %v", err)
	}
	for _, ms := range []int{10, 20, 30, 40} {
		tm.Add(time.Duration(ms) * time.Millisecond)
	}
	if tm.N() != 4 {
		t.Fatalf("N = %d", tm.N())
	}
	mean, err := tm.Mean()
	if err != nil || math.Abs(mean-25) > 1e-9 {
		t.Errorf("Mean = (%v, %v), want 25", mean, err)
	}
	sd, err := tm.Stddev()
	if err != nil || math.Abs(sd-12.909944487) > 1e-6 {
		t.Errorf("Stddev = (%v, %v)", sd, err)
	}
	mn, err := tm.Min()
	if err != nil || mn != 10 {
		t.Errorf("Min = (%v, %v)", mn, err)
	}
	mx, err := tm.Max()
	if err != nil || mx != 40 {
		t.Errorf("Max = (%v, %v)", mx, err)
	}
}

func TestPercentile(t *testing.T) {
	var tm Timing
	for i := 1; i <= 100; i++ {
		tm.Add(time.Duration(i) * time.Millisecond)
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 50}, {90, 90}, {99, 99}, {100, 100},
	}
	for _, tt := range tests {
		got, err := tm.Percentile(tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := tm.Percentile(-1); !errors.Is(err, ErrBadPercentile) {
		t.Errorf("negative percentile err = %v", err)
	}
	if _, err := tm.Percentile(101); !errors.Is(err, ErrBadPercentile) {
		t.Errorf("percentile > 100 err = %v", err)
	}
}

func TestPercentileAfterMoreAdds(t *testing.T) {
	// Adding after a sorted query must keep results correct.
	var tm Timing
	tm.Add(30 * time.Millisecond)
	tm.Add(10 * time.Millisecond)
	if _, err := tm.Percentile(50); err != nil {
		t.Fatal(err)
	}
	tm.Add(20 * time.Millisecond)
	got, err := tm.Percentile(100)
	if err != nil || got != 30 {
		t.Errorf("Max after re-add = (%v, %v), want 30", got, err)
	}
}

func TestLinearFitPerfectLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-9 || math.Abs(fit.Intercept-3) > 1e-9 {
		t.Errorf("fit = %+v, want slope 2 intercept 3", fit)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearFitConstant(t *testing.T) {
	x := []float64{100, 200, 400, 800}
	y := []float64{5, 5, 5, 5}
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope) > 1e-12 {
		t.Errorf("slope = %v, want 0", fit.Slope)
	}
	if r := fit.GrowthRatio(100, 800); math.Abs(r-1) > 1e-9 {
		t.Errorf("GrowthRatio = %v, want 1", r)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("mismatch err = %v", err)
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("too few err = %v", err)
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("identical x accepted")
	}
}

func TestGrowthRatioLinearCase(t *testing.T) {
	// Linear timing: doubling x doubles predicted y when intercept is 0.
	fit := Fit{Slope: 1, Intercept: 0}
	if r := fit.GrowthRatio(100, 800); math.Abs(r-8) > 1e-9 {
		t.Errorf("GrowthRatio = %v, want 8", r)
	}
	// Non-positive prediction at xMin -> +Inf sentinel.
	fit2 := Fit{Slope: 1, Intercept: -200}
	if r := fit2.GrowthRatio(100, 800); !math.IsInf(r, 1) {
		t.Errorf("GrowthRatio = %v, want +Inf", r)
	}
}

func TestLinearFitNoisyData(t *testing.T) {
	// A mildly noisy linear relationship should fit with high R2 and a
	// slope near the truth.
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = float64(i)
		y[i] = 3*float64(i) + 10
		if i%2 == 0 {
			y[i] += 0.5
		} else {
			y[i] -= 0.5
		}
	}
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 0.01 {
		t.Errorf("slope = %v, want ~3", fit.Slope)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R2 = %v, want near 1", fit.R2)
	}
}
