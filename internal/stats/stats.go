// Package stats provides the measurement substrate for the experiment
// harness: latency accumulation with percentiles, and ordinary least-squares
// fitting used to certify the complexity claims of Fig. 4 (identification
// time constant in the database size for the proposed protocol, linear for
// the normal approach).
package stats

import (
	"errors"
	"math"
	"sort"
	"time"
)

// Errors returned by the estimators.
var (
	ErrNoData         = errors.New("stats: no data")
	ErrBadPercentile  = errors.New("stats: percentile must be in [0, 100]")
	ErrLengthMismatch = errors.New("stats: x and y have different lengths")
	ErrTooFewPoints   = errors.New("stats: need at least two points")
)

// Timing accumulates duration samples. The zero value is ready to use.
type Timing struct {
	samples []float64 // milliseconds
	sorted  bool
}

// Add records one duration sample.
func (t *Timing) Add(d time.Duration) {
	t.samples = append(t.samples, float64(d)/float64(time.Millisecond))
	t.sorted = false
}

// N returns the number of samples.
func (t *Timing) N() int { return len(t.samples) }

// Mean returns the mean latency in milliseconds.
func (t *Timing) Mean() (float64, error) {
	if len(t.samples) == 0 {
		return 0, ErrNoData
	}
	var sum float64
	for _, s := range t.samples {
		sum += s
	}
	return sum / float64(len(t.samples)), nil
}

// Stddev returns the sample standard deviation in milliseconds.
func (t *Timing) Stddev() (float64, error) {
	if len(t.samples) < 2 {
		return 0, ErrTooFewPoints
	}
	mean, err := t.Mean()
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, s := range t.samples {
		d := s - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(t.samples)-1)), nil
}

// Percentile returns the p-th percentile latency in milliseconds using
// nearest-rank interpolation.
func (t *Timing) Percentile(p float64) (float64, error) {
	if len(t.samples) == 0 {
		return 0, ErrNoData
	}
	if p < 0 || p > 100 {
		return 0, ErrBadPercentile
	}
	if !t.sorted {
		sort.Float64s(t.samples)
		t.sorted = true
	}
	if p == 0 {
		return t.samples[0], nil
	}
	rank := int(math.Ceil(p/100*float64(len(t.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(t.samples) {
		rank = len(t.samples) - 1
	}
	return t.samples[rank], nil
}

// Min returns the smallest sample in milliseconds.
func (t *Timing) Min() (float64, error) { return t.Percentile(0) }

// Max returns the largest sample in milliseconds.
func (t *Timing) Max() (float64, error) { return t.Percentile(100) }

// Fit is an ordinary least-squares line fit y = Slope*x + Intercept.
type Fit struct {
	// Slope is the fitted slope.
	Slope float64
	// Intercept is the fitted intercept.
	Intercept float64
	// R2 is the coefficient of determination in [0, 1] (1 = perfect fit).
	R2 float64
}

// LinearFit fits a least-squares line through the points (x[i], y[i]).
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, ErrLengthMismatch
	}
	if len(x) < 2 {
		return Fit{}, ErrTooFewPoints
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, errors.New("stats: x values are all identical")
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1 // y constant and perfectly predicted by slope 0
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// GrowthRatio summarises how strongly y grows over the measured x range:
// predicted y at max(x) divided by predicted y at min(x) under the fit.
// Values near 1 indicate constant behaviour (the proposed protocol);
// values tracking max(x)/min(x) indicate linear behaviour (the normal
// approach).
func (f Fit) GrowthRatio(xMin, xMax float64) float64 {
	lo := f.Slope*xMin + f.Intercept
	hi := f.Slope*xMax + f.Intercept
	if lo <= 0 {
		return math.Inf(1)
	}
	return hi / lo
}
